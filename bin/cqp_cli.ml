(* cqp — command-line driver for the CQP library.

   Subcommands:
     run       personalize and execute a query against the synthetic
               IMDB database with a generated (or file-based) profile
     explain   show the preference space, the decision report, and the
               rewritten SQL without executing
     rank      personalize, then score every answer by the preferences
               it satisfies (Section 3's ranking by r)
     plan      show the physical execution plan of a SQL query
     pareto    print the doi/cost Pareto front of personalizations,
               plus the tri-objective (doi, cost, size) front summary
     sql       execute a plain SQL query against the synthetic database
     profile   print a generated profile
     serve     replay (or generate) a multi-user workload through the
               batch personalization server with cross-request caches
     curriculum evolve adversarial workloads against the serve path and
               freeze the worst survivors as a replayable corpus

   Profiles can be loaded from a file of lines "<doi> <condition>",
   e.g.:  0.8 director.name = 'W. Allen' *)

module C = Cqp_core
module W = Cqp_workload
module V = Cqp_relal.Value
open Cmdliner

let catalog_of ~movies ~seed =
  let config = { W.Imdb.default_config with W.Imdb.n_movies = movies } in
  W.Imdb.build ~config ~seed ()

let load_profile path =
  let ic = open_in path in
  let atoms = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then begin
         match String.index_opt line ' ' with
         | Some i ->
             let doi = float_of_string (String.sub line 0 i) in
             let cond =
               String.sub line (i + 1) (String.length line - i - 1)
             in
             atoms := Cqp_prefs.Profile.parse_atom cond doi :: !atoms
         | None -> failwith ("bad profile line: " ^ line)
       end
     done
   with End_of_file -> close_in ic);
  Cqp_prefs.Profile.of_list (List.rev !atoms)

let profile_of ~file ~seed catalog =
  match file with
  | Some path -> load_profile path
  | None ->
      let rng = Cqp_util.Rng.create (seed + 1) in
      W.Profile_gen.generate ~rng catalog

let problem_of ~problem ~cmax ~dmin ~smin ~smax =
  match problem with
  | 1 -> C.Problem.problem1 ~smin ~smax
  | 2 -> C.Problem.problem2 ~cmax
  | 3 -> C.Problem.problem3 ~cmax ~smin ~smax
  | 4 -> C.Problem.problem4 ~dmin
  | 5 -> C.Problem.problem5 ~dmin ~smin ~smax
  | 6 -> C.Problem.problem6 ~smin ~smax
  | n -> failwith (Printf.sprintf "unknown CQP problem %d (use 1-6)" n)

(* common options *)
let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")
let movies =
  Arg.(value & opt int 2000 & info [ "movies" ] ~doc:"Synthetic movie count.")

let profile_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "profile" ] ~doc:"Profile file (lines: <doi> <condition>).")

let query_arg =
  Arg.(
    value
    & pos 0 string "select title from movie"
    & info [] ~docv:"SQL" ~doc:"The query to personalize.")

let problem_arg =
  Arg.(value & opt int 2 & info [ "problem" ] ~doc:"CQP problem number (1-6).")

let cmax_arg = Arg.(value & opt float 400. & info [ "cmax" ] ~doc:"Cost bound (ms).")
let dmin_arg = Arg.(value & opt float 0.7 & info [ "dmin" ] ~doc:"doi lower bound.")
let smin_arg = Arg.(value & opt float 1. & info [ "smin" ] ~doc:"Result-size lower bound.")
let smax_arg =
  Arg.(value & opt float 1000000. & info [ "smax" ] ~doc:"Result-size upper bound.")

let max_k_arg =
  Arg.(value & opt int 20 & info [ "k" ] ~doc:"Max preferences extracted (K).")

let algo_arg =
  Arg.(
    value
    & opt string "C_Boundaries"
    & info [ "algorithm" ]
        ~doc:"Search algorithm: C_Boundaries, C_MaxBounds, D_MaxDoi, D_SingleMaxDoi, D_HeurDoi, Exhaustive.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run and write it to $(docv) as Chrome \
           trace_event JSON (open in chrome://tracing or ui.perfetto.dev).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record counters/gauges/histograms (solver.states_visited, \
           engine.block_reads, ...) and write a JSON snapshot to $(docv).")

let with_setup f verbose seed movies profile_file query problem cmax dmin
    smin smax max_k algo_name trace metrics =
  setup_logs verbose;
  (match trace with
  | Some file ->
      Cqp_obs.Trace.enable ();
      (* guarantee the trace reaches disk even on an early exit *)
      Cqp_obs.Trace.auto_flush ~file
  | None -> ());
  if metrics <> None then Cqp_obs.Metrics.enable ();
  let dump_obs () =
    (match trace with
    | Some file ->
        Cqp_obs.Trace.write_chrome ~file;
        Format.eprintf "trace: %d spans -> %s@." (Cqp_obs.Trace.span_count ())
          file
    | None -> ());
    Option.iter (fun file -> Cqp_obs.Metrics.dump_json ~file) metrics
  in
  try
    let catalog = catalog_of ~movies ~seed in
    let profile = profile_of ~file:profile_file ~seed catalog in
    let algorithm =
      match C.Algorithm.of_name algo_name with
      | Some a -> a
      | None -> failwith ("unknown algorithm " ^ algo_name)
    in
    let problem = problem_of ~problem ~cmax ~dmin ~smin ~smax in
    f catalog profile query problem algorithm max_k;
    dump_obs ();
    0
  with
  | Failure msg
  | Invalid_argument msg
  | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Cqp_sql.Parser.Parse_error (msg, pos) ->
      Printf.eprintf "SQL parse error at %d: %s\n" pos msg;
      1
  | Cqp_sql.Analyzer.Semantic_error msg ->
      Printf.eprintf "SQL semantic error: %s\n" msg;
      1

let run_action execute catalog profile query problem algorithm max_k =
  let outcome =
    C.Personalizer.run catalog profile ~sql:query ~problem ~algorithm
      ~max_k ~execute ()
  in
  let sol = outcome.C.Personalizer.solution in
  Format.printf "%s@." (C.Problem.describe problem);
  Format.printf "preference space: K = %d@."
    (C.Pref_space.k outcome.C.Personalizer.pref_space);
  Format.printf "personalization: %a@." C.Solution.pp sol;
  Format.printf "personalized SQL:@.  %s@."
    (Cqp_sql.Printer.to_string outcome.C.Personalizer.personalized);
  if execute then begin
    Format.printf "results: %d rows (%.1f ms simulated I/O)@."
      (List.length outcome.C.Personalizer.rows)
      outcome.C.Personalizer.real_cost_ms;
    List.iteri
      (fun i row ->
        if i < 25 then
          Format.printf "  %s@."
            (String.concat " | "
               (List.map V.to_string (Cqp_relal.Tuple.to_list row))))
      outcome.C.Personalizer.rows
  end

let run_cmd =
  let doc = "Personalize a query and execute it." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const (with_setup (run_action true))
      $ verbose $ seed $ movies $ profile_file $ query_arg $ problem_arg $ cmax_arg
      $ dmin_arg $ smin_arg $ smax_arg $ max_k_arg $ algo_arg $ trace_arg $ metrics_arg)

let explain_action catalog profile query problem algorithm max_k =
  let q = Cqp_sql.Parser.parse query in
  let ps, sol, personalized =
    C.Personalizer.personalize_query ~algorithm ~max_k catalog profile
      ~query:q ~problem
  in
  Format.printf "%a@.@." C.Pref_space.pp ps;
  Format.printf "%a@.@." C.Report.pp (C.Report.build problem ps sol);
  Format.printf "rewritten SQL:@.  %s@." (Cqp_sql.Printer.to_string personalized)

let explain_cmd =
  let doc = "Show the preference space and rewriting without executing." in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const (with_setup explain_action)
      $ verbose $ seed $ movies $ profile_file $ query_arg $ problem_arg $ cmax_arg
      $ dmin_arg $ smin_arg $ smax_arg $ max_k_arg $ algo_arg $ trace_arg $ metrics_arg)

let sql_action catalog _profile query _problem _algorithm _max_k =
  let q = Cqp_sql.Parser.parse query in
  Cqp_sql.Analyzer.check catalog q;
  let rs = Cqp_exec.Engine.execute_rowset catalog q in
  Format.printf "%a@." Cqp_exec.Rowset.pp rs

let sql_cmd =
  let doc = "Execute a plain SQL query against the synthetic database." in
  Cmd.v (Cmd.info "sql" ~doc)
    Term.(
      const (with_setup sql_action)
      $ verbose $ seed $ movies $ profile_file $ query_arg $ problem_arg $ cmax_arg
      $ dmin_arg $ smin_arg $ smax_arg $ max_k_arg $ algo_arg $ trace_arg $ metrics_arg)

let rank_action catalog profile query problem algorithm max_k =
  let outcome =
    C.Personalizer.run catalog profile ~sql:query ~problem ~algorithm ~max_k
      ~execute:false ()
  in
  let ranked = C.Personalizer.ranked_results catalog outcome in
  Format.printf "%s@." (C.Problem.describe problem);
  Format.printf "personalization: %a@." C.Solution.pp
    outcome.C.Personalizer.solution;
  Format.printf "ranked answers (%d rows, %d block reads):@."
    (List.length ranked.C.Ranker.ranked)
    ranked.C.Ranker.block_reads;
  List.iteri
    (fun i rr ->
      if i < 25 then
        Format.printf "  %.4f  [%s]  %s@." rr.C.Ranker.score
          (String.concat ","
             (List.map
                (fun j -> "p" ^ string_of_int (j + 1))
                rr.C.Ranker.satisfied))
          (String.concat " | "
             (List.map V.to_string (Cqp_relal.Tuple.to_list rr.C.Ranker.row))))
    ranked.C.Ranker.ranked

let rank_cmd =
  let doc = "Personalize, then rank every answer by the preferences it satisfies." in
  Cmd.v (Cmd.info "rank" ~doc)
    Term.(
      const (with_setup rank_action)
      $ verbose $ seed $ movies $ profile_file $ query_arg $ problem_arg $ cmax_arg
      $ dmin_arg $ smin_arg $ smax_arg $ max_k_arg $ algo_arg $ trace_arg $ metrics_arg)

let plan_action catalog _profile query _problem _algorithm _max_k =
  let q = Cqp_sql.Parser.parse query in
  Cqp_sql.Analyzer.check catalog q;
  print_endline (Cqp_exec.Explain.to_string catalog q)

let plan_cmd =
  let doc = "Show the physical execution plan of a SQL query." in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(
      const (with_setup plan_action)
      $ verbose $ seed $ movies $ profile_file $ query_arg $ problem_arg $ cmax_arg
      $ dmin_arg $ smin_arg $ smax_arg $ max_k_arg $ algo_arg $ trace_arg $ metrics_arg)

let pareto_action catalog profile query _problem _algorithm max_k =
  let q = Cqp_sql.Parser.parse query in
  Cqp_sql.Analyzer.check catalog q;
  let est = C.Estimate.create catalog q in
  let ps = C.Pref_space.build ~max_k est profile in
  let space = C.Space.create ~order:C.Space.By_doi ps in
  let k = C.Pref_space.k ps in
  (* One shared switch-over for the CLI, the bench and the serving
     layer: exact enumeration up to [Pareto.exact_budget_k], the
     approximate builders beyond. *)
  let exact = k <= C.Pareto.exact_budget_k in
  let front =
    if exact then C.Pareto.exact_front space else C.Pareto.greedy_front space
  in
  Format.printf "front algorithm: %s (K = %d %s %d)@."
    (if exact then "exact" else "greedy")
    k
    (if exact then "<=" else ">")
    C.Pareto.exact_budget_k;
  Format.printf "doi/cost Pareto front (%d points, K = %d):@."
    (List.length front) k;
  Format.printf "%a@." C.Pareto.pp front;
  (match C.Pareto.knee front with
  | Some knee -> Format.printf "knee: %a@." C.Params.pp knee.C.Pareto.params
  | None -> ());
  let tri =
    C.Nsga2.front ~exact_max_k:C.Pareto.exact_budget_k space
  in
  let worst =
    List.fold_left
      (fun (c, s) (p : C.Nsga2.point) ->
        (Float.max c p.params.C.Params.cost, Float.max s p.params.C.Params.size))
      (0., 0.) tri
  in
  let ref_point =
    { C.Params.doi = -0.01; cost = fst worst +. 1.; size = snd worst +. 1. }
  in
  Format.printf
    "tri-objective (doi, cost, size) front: %d points (%s), hypervolume \
     %.4g@."
    (List.length tri)
    (if k <= C.Pareto.exact_budget_k then "exact" else "nsga2")
    (C.Nsga2.hypervolume ~ref_point tri)

let pareto_cmd =
  let doc = "Print the doi/cost Pareto front of personalizations." in
  Cmd.v (Cmd.info "pareto" ~doc)
    Term.(
      const (with_setup pareto_action)
      $ verbose $ seed $ movies $ profile_file $ query_arg $ problem_arg $ cmax_arg
      $ dmin_arg $ smin_arg $ smax_arg $ max_k_arg $ algo_arg $ trace_arg $ metrics_arg)

let profile_action _catalog profile _query _problem _algorithm _max_k =
  Format.printf "%a@." Cqp_prefs.Profile.pp profile

let profile_cmd =
  let doc = "Print the (generated or loaded) user profile." in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const (with_setup profile_action)
      $ verbose $ seed $ movies $ profile_file $ query_arg $ problem_arg $ cmax_arg
      $ dmin_arg $ smin_arg $ smax_arg $ max_k_arg $ algo_arg $ trace_arg $ metrics_arg)

(* --- serve: batch multi-user workload replay --------------------- *)

let percentile = Cqp_util.Stats.percentile

let serve_action verbose seed movies workload_file save_file users requests
    updates repeat domains no_cache capacity execute deadline_ms retries
    shed_depth inject spike_ms portfolio pareto profiling events_file
    prometheus_file trace metrics =
  setup_logs verbose;
  (match trace with
  | Some file ->
      Cqp_obs.Trace.enable ();
      Cqp_obs.Trace.auto_flush ~file
  | None -> ());
  if metrics <> None then Cqp_obs.Metrics.enable ();
  (* --events implies --profile; the phase metrics that profiling
     publishes live in the registry, so profiling implies metrics. *)
  let profiling = profiling || events_file <> None in
  if profiling then begin
    Cqp_obs.Metrics.enable ();
    Cqp_profile.Request.enable ()
  end;
  if prometheus_file <> None then Cqp_obs.Metrics.enable ();
  Option.iter Cqp_profile.Reqlog.set_file events_file;
  try
    let catalog = catalog_of ~movies ~seed in
    let entries =
      match workload_file with
      | Some f -> Cqp_serve.Workload.load f
      | None ->
          Cqp_serve.Workload.generate ~users ~requests ~updates ~execute
            ~rng:(Cqp_util.Rng.create seed) catalog
    in
    (match save_file with
    | Some f ->
        Cqp_serve.Workload.save f entries;
        Format.eprintf "workload (%d entries) -> %s@." (List.length entries) f
    | None -> ());
    let resilience =
      let fault =
        Option.map
          (fun fseed ->
            Cqp_resilience.Fault.plan
              ~spec:
                {
                  Cqp_resilience.Fault.default_spec with
                  io_spike_ms = spike_ms;
                }
              ~rng:(Cqp_util.Rng.create fseed) ())
          inject
      in
      {
        Cqp_resilience.Config.default with
        deadline_ms;
        portfolio;
        pareto;
        max_retries = retries;
        shed_queue_depth = shed_depth;
        fault;
      }
    in
    let server =
      Cqp_serve.Serve.create ~caching:(not no_cache)
        ?pref_space_capacity:capacity ~resilience catalog
    in
    let pool =
      if domains > 1 then Some (Cqp_par.Pool.create ~domains ()) else None
    in
    Fun.protect ~finally:(fun () -> Option.iter Cqp_par.Pool.shutdown pool)
    @@ fun () ->
    for rep = 1 to repeat do
      let t0 = Unix.gettimeofday () in
      let responses = Cqp_serve.Workload.replay ?pool server entries in
      let elapsed = Unix.gettimeofday () -. t0 in
      let lat =
        Array.of_list
          (List.map (fun r -> r.Cqp_serve.Serve.latency_ms) responses)
      in
      Array.sort compare lat;
      let n = Array.length lat in
      Format.printf
        "pass %d/%d (%d domain%s): %d requests in %.1f ms (%.1f req/s)  \
         latency ms mean=%.2f±%.2f p50=%.2f p90=%.2f p99=%.2f@."
        rep repeat domains
        (if domains = 1 then "" else "s")
        n (elapsed *. 1000.)
        (if elapsed > 0. then float_of_int n /. elapsed else 0.)
        (Cqp_util.Stats.mean lat)
        (Cqp_util.Stats.stddev lat)
        (percentile lat 0.50) (percentile lat 0.90) (percentile lat 0.99);
      (* Outcome tally — only interesting (and only printed) when a
         resilience feature is on. *)
      if not (Cqp_resilience.Config.is_inert resilience) || pareto then begin
        let count pred = List.length (List.filter pred responses) in
        let shed =
          count (fun r ->
              match r.Cqp_serve.Serve.verdict with
              | Cqp_serve.Serve.Shed _ -> true
              | Cqp_serve.Serve.Served _ -> false)
        in
        let on_served f r =
          match r.Cqp_serve.Serve.verdict with
          | Cqp_serve.Serve.Served s -> f s
          | Cqp_serve.Serve.Shed _ -> false
        in
        let rung_count rung =
          count (on_served (fun s -> s.Cqp_serve.Serve.rung = rung))
        in
        let expired =
          count (on_served (fun s -> s.Cqp_serve.Serve.deadline_expired))
        in
        let retried =
          count (on_served (fun s -> s.Cqp_serve.Serve.retries > 0))
        in
        Format.printf
          "  outcomes: served=%d shed=%d deadline_expired=%d retried=%d  \
           rungs:%s@."
          (n - shed) shed expired retried
          (String.concat ""
             (List.map
                (fun rung ->
                  Printf.sprintf " %s=%d"
                    (Cqp_resilience.Rung.name rung)
                    (rung_count rung))
                Cqp_resilience.Rung.all))
      end
    done;
    (* Fleet-wide cache summary: the parent cache plus every shard's
       domain-local cache (sequential runs have no shards). *)
    (let caches =
       (match Cqp_serve.Serve.cache server with Some c -> [ c ] | None -> [])
       @ Cqp_serve.Serve.shard_caches server
     in
     match caches with
     | [] -> Format.printf "caches disabled@."
     | caches ->
         let sum f = List.fold_left (fun acc c -> acc + f c) 0 caches in
         let hits =
           sum (fun c ->
               (Cqp_core.Cache.extraction_stats c).Cqp_util.Lru.hits)
         in
         let lookups =
           sum (fun c ->
               (Cqp_core.Cache.extraction_stats c).Cqp_util.Lru.lookups)
         in
         let mlk = sum (fun c -> fst (Cqp_core.Cache.memo_stats c)) in
         let mht = sum (fun c -> snd (Cqp_core.Cache.memo_stats c)) in
         Format.printf
           "pref_space cache: %d/%d hits (%d entries, %d bytes%s); estimate \
            memo: %d/%d hits@."
           hits lookups
           (sum Cqp_core.Cache.extraction_entries)
           (sum Cqp_core.Cache.bytes_held)
           (match List.length caches with
           | 1 -> ""
           | n -> Printf.sprintf " across %d caches" n)
           mht mlk;
         if pareto then
           let flk =
             sum (fun c ->
                 (Cqp_core.Cache.front_stats c).Cqp_util.Lru.lookups)
           in
           let fht =
             sum (fun c -> (Cqp_core.Cache.front_stats c).Cqp_util.Lru.hits)
           in
           Format.printf
             "pareto front cache: %d/%d hits (%d entries, %d points)@." fht
             flk
             (sum Cqp_core.Cache.front_entries)
             (sum Cqp_core.Cache.front_points_held));
    if profiling then begin
      (* Per-phase latency breakdown off the registry histograms.
         Quantiles read from log-scale buckets are upper bounds within
         a factor of 2 — fine for a console summary; the bench trend
         files carry exact percentiles. *)
      Format.printf "phase breakdown (requests with the phase):@.";
      List.iter
        (fun p ->
          let nm = "profile.phase." ^ Cqp_profile.Phase.name p ^ "_us" in
          let n = Cqp_obs.Metrics.histogram_count nm in
          if n > 0 then
            Format.printf "  %-12s %6d  p50<=%.0fus p99<=%.0fus total=%.1fms@."
              (Cqp_profile.Phase.name p)
              n
              (Option.value ~default:0.
                 (Cqp_obs.Metrics.histogram_quantile nm 0.50))
              (Option.value ~default:0.
                 (Cqp_obs.Metrics.histogram_quantile nm 0.99))
              (Option.value ~default:0. (Cqp_obs.Metrics.histogram_sum nm)
              /. 1000.))
        Cqp_profile.Phase.all;
      Format.printf
        "gc: request minor_words=%d major_words=%d compactions=%d@."
        (Cqp_obs.Metrics.counter_value "profile.gc.request.minor_words")
        (Cqp_obs.Metrics.counter_value "profile.gc.request.major_words")
        (Cqp_obs.Metrics.counter_value "profile.gc.request.compactions")
    end;
    (match events_file with
    | Some f ->
        Cqp_profile.Reqlog.close ();
        Format.eprintf "events: %d request lines -> %s@."
          (Cqp_profile.Reqlog.logged_count ())
          f
    | None -> ());
    (match prometheus_file with
    | Some f ->
        Cqp_obs.Metrics.write_prometheus ~file:f;
        Format.eprintf "prometheus exposition -> %s@." f
    | None -> ());
    (match trace with
    | Some file -> Cqp_obs.Trace.write_chrome ~file
    | None -> ());
    Option.iter (fun file -> Cqp_obs.Metrics.dump_json ~file) metrics;
    0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Cqp_sql.Parser.Parse_error (msg, pos) ->
      Printf.eprintf "SQL parse error at %d: %s\n" pos msg;
      1
  | Cqp_sql.Analyzer.Semantic_error msg ->
      Printf.eprintf "SQL semantic error: %s\n" msg;
      1

let serve_cmd =
  let doc =
    "Replay a multi-user personalization workload through the batch server."
  in
  let workload_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "workload" ] ~docv:"FILE"
          ~doc:"Workload file to replay (default: generate one).")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Write the (generated or loaded) workload to $(docv).")
  in
  let users_arg =
    Arg.(value & opt int 3 & info [ "users" ] ~doc:"Generated users.")
  in
  let requests_arg =
    Arg.(value & opt int 20 & info [ "requests" ] ~doc:"Generated requests.")
  in
  let updates_arg =
    Arg.(
      value
      & opt int 0
      & info [ "updates" ]
          ~doc:"Interleaved profile updates (exercise cache invalidation).")
  in
  let repeat_arg =
    Arg.(
      value
      & opt int 1
      & info [ "repeat" ]
          ~doc:"Replay passes; pass 2+ runs against warm caches.")
  in
  let domains_arg =
    Arg.(
      value
      & opt int 1
      & info [ "domains" ]
          ~doc:
            "Total parallelism for replay: requests are partitioned by user \
             across this many domains, each serving through its own \
             domain-local caches.  Responses are bit-identical to \
             $(b,--domains 1).")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable both caches.")
  in
  let capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-capacity" ]
          ~doc:"Pref_space extraction LRU capacity (default 128).")
  in
  let execute_arg =
    Arg.(
      value
      & flag
      & info [ "execute" ]
          ~doc:"Mark generated requests for engine execution.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline in milliseconds.  Searches become \
             anytime (best-so-far on expiry) and requests that cannot \
             reach feasibility in time degrade down the ladder: \
             heuristic, greedy, unpersonalized.")
  in
  let retries_arg =
    Arg.(
      value
      & opt int Cqp_resilience.Config.default.Cqp_resilience.Config.max_retries
      & info [ "retries" ]
          ~doc:
            "Bounded-backoff retries for injected transient faults \
             before answering unpersonalized.")
  in
  let shed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shed-depth" ] ~docv:"N"
          ~doc:
            "Load shedding: a request at queue position >= $(docv) in \
             its serving lane is shed with an explicit outcome instead \
             of served.")
  in
  let inject_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject" ] ~docv:"SEED"
          ~doc:
            "Enable the deterministic fault-injection plan seeded by \
             $(docv): I/O latency spikes, forced cache misses, \
             eviction storms, and transient exceptions, decided per \
             request content (replayable at any domain count).")
  in
  let spike_ms_arg =
    Arg.(
      value
      & opt float
          Cqp_resilience.Fault.default_spec.Cqp_resilience.Fault.io_spike_ms
      & info [ "spike-ms" ] ~docv:"MS"
          ~doc:"Injected I/O spike duration (with $(b,--inject)).")
  in
  let portfolio_arg =
    Arg.(
      value
      & flag
      & info [ "portfolio" ]
          ~doc:"Serve the Full rung with the solver portfolio instead \
                of each request's single algorithm.")
  in
  let pareto_serve_arg =
    Arg.(
      value
      & flag
      & info [ "pareto" ]
          ~doc:
            "Pareto serving: compute and cache a tri-objective (doi, \
             cost, size) front per (query, profile), and under deadline \
             pressure answer with an operating point off the front that \
             fits the remaining budget (rung $(b,pareto)) instead of \
             dropping straight to the heuristic rungs.  Without \
             deadline pressure responses are unchanged; only the front \
             cache warms.")
  in
  let profile_flag_arg =
    Arg.(
      value
      & flag
      & info [ "profile" ]
          ~doc:
            "Per-request phase profiling: queue-wait / cache-lookup / \
             solve / degrade / exec / render timers and GC word deltas, \
             published as $(b,profile.phase.*) histograms and \
             $(b,profile.gc.*) counters, with a breakdown printed after \
             the replay.  Implies metrics recording.")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Write one JSON line per served request (id, user, rung, \
             outcome, per-phase microseconds, cache hits, GC words) to \
             $(docv).  Implies $(b,--profile).")
  in
  let prometheus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prometheus" ] ~docv:"FILE"
          ~doc:
            "Write the final metrics registry to $(docv) in Prometheus \
             text exposition format (0.0.4).  Implies metrics recording.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve_action
      $ verbose $ seed $ movies $ workload_arg $ save_arg $ users_arg
      $ requests_arg $ updates_arg $ repeat_arg $ domains_arg $ no_cache_arg
      $ capacity_arg $ execute_arg $ deadline_arg $ retries_arg $ shed_arg
      $ inject_arg $ spike_ms_arg $ portfolio_arg $ pareto_serve_arg
      $ profile_flag_arg $ events_arg $ prometheus_arg $ trace_arg
      $ metrics_arg)

(* --- curriculum: adversarial workload evolution ------------------ *)

module Curriculum = Cqp_curriculum.Curriculum
module Cur_fitness = Cqp_curriculum.Fitness
module Cur_scenario = Cqp_curriculum.Scenario

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fitness_json (f : Cur_fitness.t) =
  Printf.sprintf
    "{\"score\": %.6g, \"requests\": %d, \"served\": %d, \"shed\": %d, \
     \"blown\": %d, \"degraded\": %d, \"retries\": %d, \"mean_work\": %.6g, \
     \"stddev_work\": %.6g, \"p99_work\": %.6g, \"miss_ratio\": %.6g, \
     \"est_cost_p99\": %.6g}"
    (Cur_fitness.score f) f.Cur_fitness.requests f.Cur_fitness.served
    f.Cur_fitness.shed f.Cur_fitness.blown f.Cur_fitness.degraded
    f.Cur_fitness.retries f.Cur_fitness.mean_work f.Cur_fitness.stddev_work
    f.Cur_fitness.p99_work f.Cur_fitness.miss_ratio f.Cur_fitness.est_cost_p99

let summary_json ~seed ~domains ~population spec (result : Curriculum.result) =
  let baseline = result.Curriculum.baseline.Curriculum.fitness in
  let elites =
    List.map
      (fun (axis, (e : Curriculum.elite)) ->
        let bv = Curriculum.axis_value baseline axis in
        let ev = Curriculum.axis_value e.Curriculum.fitness axis in
        Printf.sprintf
          "    {\"axis\": %S, \"baseline\": %.6g, \"elite\": %.6g, \
           \"beats_baseline\": %b, \"fitness\": %s}"
          (Curriculum.axis_name axis) bv ev (ev > bv)
          (fitness_json e.Curriculum.fitness))
      result.Curriculum.reservoir
  in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"seed\": %d," seed;
      Printf.sprintf "  \"generations\": %d," result.Curriculum.generations;
      Printf.sprintf "  \"population\": %d," population;
      Printf.sprintf "  \"evaluations\": %d," result.Curriculum.evaluations;
      Printf.sprintf "  \"domains\": %d," domains;
      Printf.sprintf "  \"catalog\": %S,"
        (Cur_scenario.catalog_spec_to_string spec);
      Printf.sprintf "  \"par_pool_errors\": %d,"
        (Cqp_obs.Metrics.counter_value "par.pool.errors");
      Printf.sprintf "  \"baseline\": %s," (fitness_json baseline);
      "  \"elites\": [";
      String.concat ",\n" elites;
      "  ]";
      "}";
    ]

let curriculum_action verbose seed generations population mutation_rate
    domains movies catalog_seed export_dir summary_file metrics =
  setup_logs verbose;
  (* par.pool.errors must read back 0 in the summary, so the registry
     is always on for this subcommand. *)
  Cqp_obs.Metrics.enable ();
  try
    let spec =
      if movies = 0 then Cur_scenario.Small catalog_seed
      else Cur_scenario.Movies { movies; seed = catalog_seed }
    in
    let catalog = Cur_scenario.build_catalog spec in
    let pool =
      if domains > 1 then Some (Cqp_par.Pool.create ~domains ()) else None
    in
    Fun.protect ~finally:(fun () -> Option.iter Cqp_par.Pool.shutdown pool)
    @@ fun () ->
    let result =
      Curriculum.evolve ?pool ~population ~mutation_rate
        ~log:(Format.printf "%s@.") ~generations ~seed catalog
    in
    Format.printf
      "evolved %d candidates over %d generations (catalog %s, %d domain%s)@."
      result.Curriculum.evaluations result.Curriculum.generations
      (Cur_scenario.catalog_spec_to_string spec)
      domains
      (if domains = 1 then "" else "s");
    Format.printf "baseline: %s@."
      (Cur_fitness.summary result.Curriculum.baseline.Curriculum.fitness);
    Format.printf "%-22s %14s %14s  improved@." "axis" "baseline" "elite";
    List.iter
      (fun (axis, (e : Curriculum.elite)) ->
        let bv =
          Curriculum.axis_value result.Curriculum.baseline.Curriculum.fitness
            axis
        in
        let ev = Curriculum.axis_value e.Curriculum.fitness axis in
        Format.printf "%-22s %14.4f %14.4f  %s@." (Curriculum.axis_name axis)
          bv ev
          (if ev > bv then "yes" else "no"))
      result.Curriculum.reservoir;
    (match export_dir with
    | Some dir ->
        mkdir_p dir;
        let paths = Curriculum.export ~dir spec result in
        List.iter
          (fun (_, path) -> Format.eprintf "scenario -> %s@." path)
          paths
    | None -> ());
    (match summary_file with
    | Some file ->
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc
              (summary_json ~seed ~domains ~population spec result);
            output_char oc '\n');
        Format.eprintf "summary -> %s@." file
    | None -> ());
    Option.iter (fun file -> Cqp_obs.Metrics.dump_json ~file) metrics;
    0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1

let curriculum_cmd =
  let doc =
    "Evolve adversarial workloads against the serve path and freeze the \
     worst survivors as a replayable corpus."
  in
  let generations_arg =
    Arg.(value & opt int 6 & info [ "generations" ] ~doc:"GA generations.")
  in
  let population_arg =
    Arg.(value & opt int 12 & info [ "population" ] ~doc:"GA population size.")
  in
  let mutation_arg =
    Arg.(
      value
      & opt float 0.25
      & info [ "mutation-rate" ] ~doc:"Per-gene mutation probability.")
  in
  let domains_arg =
    Arg.(
      value
      & opt int 1
      & info [ "domains" ]
          ~doc:
            "Evaluate candidates in parallel across this many domains \
             (one candidate per job, each replayed sequentially).  The \
             result is bit-identical to $(b,--domains 1).")
  in
  let cur_movies_arg =
    Arg.(
      value
      & opt int 0
      & info [ "movies" ]
          ~doc:
            "Catalog size; $(b,0) (the default) evolves against the \
             small test catalog, which is what the frozen corpus uses.")
  in
  let catalog_seed_arg =
    Arg.(
      value & opt int 3 & info [ "catalog-seed" ] ~doc:"Catalog build seed.")
  in
  let export_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"DIR"
          ~doc:
            "Freeze the elite reservoir as $(docv)/<axis>.scenario files \
             (replayable via the test suite's corpus replay).")
  in
  let summary_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:
            "Write a JSON run summary (baseline vs per-axis elites, \
             pool error count) to $(docv).")
  in
  Cmd.v (Cmd.info "curriculum" ~doc)
    Term.(
      const curriculum_action
      $ verbose $ seed $ generations_arg $ population_arg $ mutation_arg
      $ domains_arg $ cur_movies_arg $ catalog_seed_arg $ export_arg
      $ summary_arg $ metrics_arg)

(* --- network front door: netserve / loadgen ---------------------- *)

module Net_server = Cqp_net.Server
module Net_client = Cqp_net.Client
module Net_loadgen = Cqp_net.Loadgen

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"TCP address (dotted quad).")

let unix_sock_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "unix" ] ~docv:"PATH"
        ~doc:"Serve/connect on a Unix socket instead of TCP.")

let sockaddr_of ~unix_path ~host ~port =
  match unix_path with
  | Some path -> Unix.ADDR_UNIX path
  | None ->
      let inet =
        try Unix.inet_addr_of_string host
        with _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith ("cannot resolve host " ^ host))
      in
      Unix.ADDR_INET (inet, port)

let netserve_action verbose seed movies domains lanes max_connections
    store_dir store_resident deadline_ms retries shed_depth no_cache capacity
    host port unix_path metrics prometheus_file =
  setup_logs verbose;
  if metrics <> None || prometheus_file <> None then Cqp_obs.Metrics.enable ();
  try
    let catalog = catalog_of ~movies ~seed in
    let resilience =
      {
        Cqp_resilience.Config.default with
        deadline_ms;
        max_retries = retries;
        shed_queue_depth = shed_depth;
      }
    in
    let serve =
      Cqp_serve.Serve.create ~caching:(not no_cache)
        ?pref_space_capacity:capacity ~resilience catalog
    in
    let pool = Cqp_par.Pool.create ~domains () in
    Fun.protect ~finally:(fun () -> Cqp_par.Pool.shutdown pool)
    @@ fun () ->
    let addr =
      match unix_path with
      | Some path -> Net_server.Unix_path path
      | None -> Net_server.Tcp (host, port)
    in
    let srv =
      Net_server.create ?lanes ~max_connections ?store_dir ?store_resident
        ~pool ~addr serve
    in
    Net_server.start srv;
    (* The bound address goes to stdout as a single parseable line:
       with --port 0 it is the only way to learn the ephemeral port. *)
    (match Net_server.bound_addr srv with
    | Unix.ADDR_INET (a, p) ->
        Printf.printf "listening on %s:%d\n%!" (Unix.string_of_inet_addr a) p
    | Unix.ADDR_UNIX p -> Printf.printf "listening on unix:%s\n%!" p);
    let n_lanes = match lanes with Some n -> n | None -> domains in
    Format.eprintf
      "%d domain%s, %d lane%s, %d movies (seed %d)%s; stop with a Shutdown \
       frame (cqp loadgen --shutdown)@."
      domains
      (if domains = 1 then "" else "s")
      n_lanes
      (if n_lanes = 1 then "" else "s")
      movies seed
      (match store_dir with
      | Some d -> Printf.sprintf ", store %s" d
      | None -> "");
    Net_server.wait srv;
    Net_server.stop srv;
    Option.iter (fun file -> Cqp_obs.Metrics.dump_json ~file) metrics;
    Option.iter
      (fun file -> Cqp_obs.Metrics.write_prometheus ~file)
      prometheus_file;
    0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "error: %s: %s %s\n" fn (Unix.error_message e) arg;
      1

let netserve_cmd =
  let doc =
    "Serve personalization over the wire: a TCP (or Unix-socket) front \
     door speaking the length-prefixed cqp_net protocol, with an \
     optional on-disk profile store."
  in
  let domains_arg =
    Arg.(
      value
      & opt int 2
      & info [ "domains" ]
          ~doc:"Worker pool domains (and default lane count).")
  in
  let lanes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "lanes" ] ~docv:"N"
          ~doc:
            "Serving lanes (users are hashed onto lanes); defaults to \
             the domain count.")
  in
  let max_conns_arg =
    Arg.(
      value
      & opt int 32
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Live connection bound; excess connections get Busy.")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Back profiles with the sharded on-disk store in $(docv) \
             (created or reopened; a directory prepopulated by \
             $(b,cqp loadgen --populate-store) works).")
  in
  let store_resident_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "store-resident" ] ~docv:"N"
          ~doc:
            "Decoded profiles kept resident with $(b,--store) \
             (default 4096); evicted users fault back from disk.")
  in
  let port_arg =
    Arg.(
      value
      & opt int 7464
      & info [ "port" ] ~doc:"TCP port; 0 binds an ephemeral port.")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable both caches.")
  in
  let capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-capacity" ]
          ~doc:"Pref_space extraction LRU capacity (default 128).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline (a query's own deadline_ms \
             field overrides it).")
  in
  let retries_arg =
    Arg.(
      value
      & opt int Cqp_resilience.Config.default.Cqp_resilience.Config.max_retries
      & info [ "retries" ] ~doc:"Transient-fault retries.")
  in
  let shed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shed-depth" ] ~docv:"N"
          ~doc:
            "Shed a query admitted at lane queue position >= $(docv) \
             with an explicit Shed frame.")
  in
  let prometheus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prometheus" ] ~docv:"FILE"
          ~doc:
            "Write the final metrics registry to $(docv) in Prometheus \
             text exposition format on exit.  Implies metrics recording.")
  in
  Cmd.v (Cmd.info "netserve" ~doc)
    Term.(
      const netserve_action
      $ verbose $ seed $ movies $ domains_arg $ lanes_arg $ max_conns_arg
      $ store_arg $ store_resident_arg $ deadline_arg $ retries_arg
      $ shed_arg $ no_cache_arg $ capacity_arg $ host_arg $ port_arg
      $ unix_sock_arg $ metrics_arg $ prometheus_arg)

let loadgen_action verbose seed movies users zipf rate requests connections
    load_seed deadline_ms execute no_populate populate_store_dir store_shards
    host port unix_path json_file shutdown =
  setup_logs verbose;
  try
    let catalog = catalog_of ~movies ~seed in
    match populate_store_dir with
    | Some dir ->
        (* Offline bulk load: no server involved. *)
        Net_loadgen.populate_store ?shards:store_shards ~dir ~users
          ~seed:load_seed catalog;
        Format.printf "populated %s with %d profiles@." dir users;
        0
    | None ->
        let config =
          {
            Net_loadgen.users;
            zipf_s = zipf;
            rate;
            requests;
            connections;
            seed = load_seed;
            deadline_ms;
            execute;
          }
        in
        let addr = sockaddr_of ~unix_path ~host ~port in
        if not no_populate then begin
          Net_loadgen.populate config addr;
          Format.eprintf "installed %d profiles over the wire@." users
        end;
        let report = Net_loadgen.run config ~catalog addr in
        Format.printf "%a@." Net_loadgen.pp_report report;
        (match json_file with
        | Some file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc (Net_loadgen.report_to_json report);
                output_char oc '\n');
            Format.eprintf "report -> %s@." file
        | None -> ());
        if shutdown then begin
          let c = Net_client.connect addr in
          Fun.protect
            ~finally:(fun () -> Net_client.close c)
            (fun () -> Net_client.shutdown c)
        end;
        if report.Net_loadgen.protocol_errors > 0 then 1 else 0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "error: %s: %s %s\n" fn (Unix.error_message e) arg;
      1

let loadgen_cmd =
  let doc =
    "Open-loop load generator for $(b,cqp netserve): Zipf-skewed users, \
     Poisson arrivals, latency percentiles and shed/blown counts.  The \
     $(b,--movies)/$(b,--seed) catalog options must match the server's."
  in
  let users_arg =
    Arg.(
      value
      & opt int Net_loadgen.default.Net_loadgen.users
      & info [ "users" ] ~doc:"User population (names u0..).")
  in
  let zipf_arg =
    Arg.(
      value
      & opt float Net_loadgen.default.Net_loadgen.zipf_s
      & info [ "zipf" ] ~docv:"S"
          ~doc:"Zipf skew exponent over users; 0 is uniform.")
  in
  let rate_arg =
    Arg.(
      value
      & opt float Net_loadgen.default.Net_loadgen.rate
      & info [ "rate" ] ~docv:"RPS" ~doc:"Offered load, requests/second.")
  in
  let requests_arg =
    Arg.(
      value
      & opt int Net_loadgen.default.Net_loadgen.requests
      & info [ "requests" ] ~doc:"Total arrivals.")
  in
  let connections_arg =
    Arg.(
      value
      & opt int Net_loadgen.default.Net_loadgen.connections
      & info [ "connections" ] ~doc:"Worker domains, one socket each.")
  in
  let load_seed_arg =
    Arg.(
      value
      & opt int Net_loadgen.default.Net_loadgen.seed
      & info [ "load-seed" ]
          ~doc:
            "Load-generator seed: drives user installs (user u<i> gets \
             generator seed load-seed + i) and request content; \
             distinct from the catalog $(b,--seed).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Stamp every query with this deadline.")
  in
  let execute_arg =
    Arg.(
      value
      & flag
      & info [ "execute" ] ~doc:"Mark queries for engine execution.")
  in
  let no_populate_arg =
    Arg.(
      value
      & flag
      & info [ "no-populate" ]
          ~doc:
            "Skip the install phase (the server already holds the \
             population, e.g. from a prepopulated store).")
  in
  let populate_store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "populate-store" ] ~docv:"DIR"
          ~doc:
            "Do not connect anywhere: bulk-write the $(b,--users) \
             population into the store directory $(docv) and exit \
             (hand $(docv) to $(b,cqp netserve --store)).")
  in
  let store_shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "store-shards" ] ~docv:"N"
          ~doc:"Segment-shard count with $(b,--populate-store).")
  in
  let port_arg =
    Arg.(value & opt int 7464 & info [ "port" ] ~doc:"Server TCP port.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the report as one JSON object to $(docv).")
  in
  let shutdown_arg =
    Arg.(
      value
      & flag
      & info [ "shutdown" ]
          ~doc:"Send a Shutdown frame after the run (drains the server).")
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const loadgen_action
      $ verbose $ seed $ movies $ users_arg $ zipf_arg $ rate_arg
      $ requests_arg $ connections_arg $ load_seed_arg $ deadline_arg
      $ execute_arg $ no_populate_arg $ populate_store_arg $ store_shards_arg
      $ host_arg $ port_arg $ unix_sock_arg $ json_arg $ shutdown_arg)

let () =
  let doc = "Constrained Query Personalization (SIGMOD 2005) toolkit" in
  let info = Cmd.info "cqp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            run_cmd; explain_cmd; rank_cmd; plan_cmd; pareto_cmd; sql_cmd;
            profile_cmd; serve_cmd; curriculum_cmd; netserve_cmd; loadgen_cmd;
          ]))
