test/test_prefs.mli:
