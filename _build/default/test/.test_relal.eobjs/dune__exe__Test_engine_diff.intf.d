test/test_engine_diff.mli:
