test/testlib.ml: Array Cqp_core Cqp_prefs Cqp_relal Cqp_sql Cqp_util List Stdlib
