test/test_infra.ml: Alcotest Cqp_core Cqp_exec Cqp_relal Testlib
