test/test_pref_space.mli:
