test/test_metaheuristics.ml: Alcotest Cqp_core Cqp_util List Testlib
