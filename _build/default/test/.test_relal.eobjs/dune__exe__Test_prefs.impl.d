test/test_prefs.ml: Alcotest Cqp_prefs Cqp_relal Cqp_sql List QCheck QCheck_alcotest
