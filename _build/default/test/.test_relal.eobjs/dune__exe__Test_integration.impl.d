test/test_integration.ml: Alcotest Array Cqp_core Cqp_exec Cqp_relal Cqp_sql Cqp_util Cqp_workload List Printf String
