test/test_pref_space.ml: Alcotest Array Cqp_core Cqp_prefs Cqp_relal Cqp_sql Cqp_util Fun List Printf QCheck QCheck_alcotest Testlib
