test/test_relal.ml: Alcotest Array Cqp_relal List Printf QCheck QCheck_alcotest
