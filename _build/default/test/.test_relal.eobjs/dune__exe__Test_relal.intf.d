test/test_relal.mli:
