test/test_policy.ml: Alcotest Cqp_core Cqp_prefs Cqp_relal Cqp_workload List Option String
