test/test_workload.ml: Alcotest Array Cqp_prefs Cqp_relal Cqp_sql Cqp_util Cqp_workload Float Fun Hashtbl List
