test/test_cursor.mli:
