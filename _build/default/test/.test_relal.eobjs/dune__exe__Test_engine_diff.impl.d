test/test_engine_diff.ml: Alcotest Array Char Cqp_exec Cqp_relal Cqp_sql Cqp_util Hashtbl List Option Printf QCheck QCheck_alcotest String
