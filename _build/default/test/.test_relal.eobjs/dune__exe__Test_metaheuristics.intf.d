test/test_metaheuristics.mli:
