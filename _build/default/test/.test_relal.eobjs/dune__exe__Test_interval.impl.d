test/test_interval.ml: Alcotest Cqp_core Cqp_util List Printf QCheck QCheck_alcotest Testlib
