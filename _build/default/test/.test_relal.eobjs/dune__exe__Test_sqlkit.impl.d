test/test_sqlkit.ml: Alcotest Cqp_relal Cqp_sql List QCheck QCheck_alcotest
