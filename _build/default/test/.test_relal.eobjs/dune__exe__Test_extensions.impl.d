test/test_extensions.ml: Alcotest Cqp_core Cqp_exec Cqp_prefs Cqp_relal Cqp_sql Cqp_util Filename List Option Printf QCheck QCheck_alcotest String Sys Testlib
