test/test_cursor.ml: Alcotest Cqp_exec Cqp_relal Cqp_sql Cqp_util List Printf QCheck QCheck_alcotest String
