test/test_exec.ml: Alcotest Cqp_exec Cqp_relal Cqp_sql List QCheck QCheck_alcotest String
