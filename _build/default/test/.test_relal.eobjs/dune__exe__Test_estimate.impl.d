test/test_estimate.ml: Alcotest Cqp_core Cqp_prefs Cqp_relal Cqp_sql Cqp_util List Printf QCheck QCheck_alcotest Testlib
