test/test_rewrite.ml: Alcotest Cqp_core Cqp_exec Cqp_prefs Cqp_relal Cqp_sql List String
