test/test_solver.ml: Alcotest Cqp_core Cqp_util List QCheck QCheck_alcotest String Testlib
