test/test_state.ml: Alcotest Array Cqp_core Cqp_util List QCheck QCheck_alcotest Testlib
