test/test_sqlkit.mli:
