test/test_algorithms.ml: Alcotest Array Cqp_core Cqp_util List Printf QCheck QCheck_alcotest Testlib
