(** The personalization graph G(V, E) (Section 3).

    A directed graph extending the database schema graph with the
    value nodes and preference edges contributed by a user profile:
    relation nodes, attribute nodes, value nodes; selection edges
    (attribute → value) and join edges (attribute → attribute).

    The graph offers enumeration (for inspection and tests) and
    exhaustive acyclic-path generation, the ground truth against which
    the best-first Preference Space algorithm is tested. *)

type node =
  | Rel_node of string
  | Attr_node of string * string
  | Value_node of string * string * Cqp_relal.Value.t

type edge =
  | Sel_edge of Profile.selection
  | Join_edge of Profile.join

type t

val build : Cqp_relal.Catalog.t -> Profile.t -> t
(** @raise Invalid_argument when the profile references unknown
    relations or attributes (uses {!Profile.validate}). *)

val nodes : t -> node list
val edges : t -> edge list
val relation_names : t -> string list
val profile : t -> Profile.t

val selection_edges_on : t -> string -> Profile.selection list
val join_edges_from : t -> string -> Profile.join list

val acyclic_paths_from : ?max_length:int -> t -> string -> Path.t list
(** All acyclic paths anchored at the relation, by exhaustive DFS,
    longest path bounded by [max_length] atomic preferences
    (default: number of relations in the graph). *)

val reachable_relations : t -> string -> string list
(** Relations reachable from the anchor through join edges (anchor
    included). *)

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
