module Ast = Cqp_sql.Ast

type t = { joins : Profile.join list; sel : Profile.selection }

let atomic sel = { joins = []; sel }

let anchor t =
  match t.joins with
  | j :: _ -> j.Profile.j_from_rel
  | [] -> t.sel.Profile.s_rel

let extend j t =
  if j.Profile.j_to_rel <> anchor t then
    invalid_arg
      (Printf.sprintf "Path.extend: join targets %s but path anchors at %s"
         j.Profile.j_to_rel (anchor t));
  { t with joins = j :: t.joins }

let length t = List.length t.joins + 1

let relations t =
  match t.joins with
  | [] -> [ t.sel.Profile.s_rel ]
  | j :: _ ->
      j.Profile.j_from_rel
      :: List.map (fun jn -> jn.Profile.j_to_rel) t.joins

let doi ?f t =
  Doi.compose ?f
    (List.map (fun j -> j.Profile.j_doi) t.joins @ [ t.sel.Profile.s_doi ])

let is_acyclic t =
  let rels = relations t in
  List.length (List.sort_uniq String.compare rels) = List.length rels

let would_cycle j t = List.mem j.Profile.j_from_rel (relations t)

let condition t =
  let join_pred (j : Profile.join) =
    Ast.Cmp
      ( Ast.Eq,
        Ast.Col (Some j.Profile.j_from_rel, j.Profile.j_from_attr),
        Ast.Col (Some j.Profile.j_to_rel, j.Profile.j_to_attr) )
  in
  let sel_pred (s : Profile.selection) =
    Ast.Cmp
      ( s.Profile.s_op,
        Ast.Col (Some s.Profile.s_rel, s.Profile.s_attr),
        Ast.Lit s.Profile.s_value )
  in
  Ast.conj (List.map join_pred t.joins @ [ sel_pred t.sel ])

let compare a b =
  Stdlib.compare
    ( List.map
        (fun (j : Profile.join) ->
          (j.j_from_rel, j.j_from_attr, j.j_to_rel, j.j_to_attr))
        a.joins,
      a.sel.Profile.s_rel,
      a.sel.Profile.s_attr,
      a.sel.Profile.s_op,
      Cqp_relal.Value.to_sql a.sel.Profile.s_value )
    ( List.map
        (fun (j : Profile.join) ->
          (j.j_from_rel, j.j_from_attr, j.j_to_rel, j.j_to_attr))
        b.joins,
      b.sel.Profile.s_rel,
      b.sel.Profile.s_attr,
      b.sel.Profile.s_op,
      Cqp_relal.Value.to_sql b.sel.Profile.s_value )

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "%s (doi %.3f)"
    (Cqp_sql.Printer.predicate_to_string (condition t))
    (doi t)
