type compose = Product | Min_compose
type combine = Noisy_or | Max_combine

exception Invalid_doi of float

let check d = if d < 0. || d > 1. then raise (Invalid_doi d) else d

let compose_incr ?(f = Product) acc d =
  match f with Product -> acc *. d | Min_compose -> min acc d

let compose ?(f = Product) dois =
  List.fold_left (compose_incr ~f) 1. (List.map check dois)

let combine_incr ?(r = Noisy_or) acc d =
  match r with
  | Noisy_or -> 1. -. ((1. -. acc) *. (1. -. d))
  | Max_combine -> max acc d

let combine ?(r = Noisy_or) dois =
  List.fold_left (combine_incr ~r) 0. (List.map check dois)
