(** Implicit selection preferences: directed acyclic paths in the
    personalization graph (Section 3).

    A path is a chain of join preferences followed by one terminal
    selection preference.  The chain is anchored at the relation of its
    first join (or of the selection itself when there are no joins);
    query personalization attaches the anchor to a relation of the
    query.  Its doi is the composition [f⊗] of the constituent dois
    (Formula 1/9). *)

type t = { joins : Profile.join list; sel : Profile.selection }

val atomic : Profile.selection -> t
val extend : Profile.join -> t -> t
(** [extend j p] prepends join [j]; [j.j_to_rel] must equal [anchor p].
    @raise Invalid_argument otherwise. *)

val anchor : t -> string
(** The relation the path attaches to. *)

val length : t -> int
(** Number of atomic preferences on the path (joins + 1). *)

val relations : t -> string list
(** Relations traversed, anchor first, without duplicates removed. *)

val doi : ?f:Doi.compose -> t -> float
(** Composed degree of interest (Formula 9 by default). *)

val is_acyclic : t -> bool
(** True when no relation repeats along the path. *)

val would_cycle : Profile.join -> t -> bool
(** Would appending [j] in front revisit a relation already on the
    path? Used by the Preference Space traversal to keep paths acyclic. *)

val condition : t -> Cqp_sql.Ast.predicate
(** The conjunction of the path's join and selection conditions, with
    relation-name qualifiers (suitable for a sub-query whose FROM lists
    each relation once under its own name). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
