lib/prefs/doi.mli:
