lib/prefs/path.mli: Cqp_sql Doi Format Profile
