lib/prefs/path.ml: Cqp_relal Cqp_sql Doi Format List Printf Profile Stdlib String
