lib/prefs/pgraph.ml: Cqp_relal Format List Path Profile String
