lib/prefs/profile.mli: Cqp_relal Cqp_sql Format
