lib/prefs/doi.ml: List
