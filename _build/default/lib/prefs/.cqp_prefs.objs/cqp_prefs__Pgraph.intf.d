lib/prefs/pgraph.mli: Cqp_relal Format Path Profile
