lib/prefs/profile.ml: Cqp_relal Cqp_sql Doi Format List String
