module Value = Cqp_relal.Value

type node =
  | Rel_node of string
  | Attr_node of string * string
  | Value_node of string * string * Value.t

type edge = Sel_edge of Profile.selection | Join_edge of Profile.join

type t = { catalog : Cqp_relal.Catalog.t; profile : Profile.t }

let build catalog profile =
  (match Profile.validate catalog profile with
  | Ok () -> ()
  | Error problems ->
      invalid_arg ("Pgraph.build: " ^ String.concat "; " problems));
  { catalog; profile }

let relation_names t = Cqp_relal.Catalog.names t.catalog
let profile t = t.profile

let nodes t =
  let rels = relation_names t in
  let rel_nodes = List.map (fun r -> Rel_node r) rels in
  let attr_nodes =
    List.concat_map
      (fun r ->
        let schema =
          Cqp_relal.Relation.schema (Cqp_relal.Catalog.get t.catalog r)
        in
        List.map
          (fun a -> Attr_node (r, a.Cqp_relal.Schema.attr_name))
          schema.Cqp_relal.Schema.attrs)
      rels
  in
  let value_nodes =
    List.map
      (fun (s : Profile.selection) ->
        Value_node (s.s_rel, s.s_attr, s.s_value))
      (Profile.selections t.profile)
  in
  rel_nodes @ attr_nodes @ value_nodes

let edges t =
  List.map (fun s -> Sel_edge s) (Profile.selections t.profile)
  @ List.map (fun j -> Join_edge j) (Profile.joins t.profile)

let selection_edges_on t rel = Profile.selections_on t.profile rel
let join_edges_from t rel = Profile.joins_from t.profile rel

let acyclic_paths_from ?max_length t anchor =
  let anchor = String.lowercase_ascii anchor in
  let max_length =
    match max_length with
    | Some n -> n
    | None -> List.length (relation_names t)
  in
  (* DFS over join edges, collecting a path for every selection edge
     found at any relation along the way. *)
  let rec explore rel visited depth =
    let direct =
      List.map Path.atomic (selection_edges_on t rel)
    in
    let extended =
      if depth >= max_length then []
      else
        List.concat_map
          (fun (j : Profile.join) ->
            if List.mem j.j_to_rel visited then []
            else
              explore j.j_to_rel (j.j_to_rel :: visited) (depth + 1)
              |> List.map (fun p -> Path.extend j p))
          (join_edges_from t rel)
    in
    direct @ extended
  in
  explore anchor [ anchor ] 1
  |> List.filter (fun p -> Path.length p <= max_length)

let reachable_relations t anchor =
  let anchor = String.lowercase_ascii anchor in
  let rec bfs seen frontier =
    match frontier with
    | [] -> List.rev seen
    | rel :: rest ->
        let nexts =
          List.filter_map
            (fun (j : Profile.join) ->
              if List.mem j.j_to_rel seen || List.mem j.j_to_rel rest then
                None
              else Some j.j_to_rel)
            (join_edges_from t rel)
        in
        bfs (rel :: seen) (rest @ nexts)
  in
  bfs [] [ anchor ]

let pp_node ppf = function
  | Rel_node r -> Format.fprintf ppf "rel:%s" r
  | Attr_node (r, a) -> Format.fprintf ppf "attr:%s.%s" r a
  | Value_node (r, a, v) ->
      Format.fprintf ppf "value:%s.%s=%s" r a (Value.to_sql v)

let pp ppf t =
  Format.fprintf ppf "@[<v>personalization graph: %d nodes, %d edges@ %a@]"
    (List.length (nodes t))
    (List.length (edges t))
    Profile.pp t.profile
