lib/sqlkit/parser.mli: Ast
