lib/sqlkit/analyzer.ml: Ast Cqp_relal Format Hashtbl List Option String
