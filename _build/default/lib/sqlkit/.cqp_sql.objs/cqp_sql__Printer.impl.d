lib/sqlkit/printer.ml: Ast Buffer Cqp_relal Format List String
