lib/sqlkit/analyzer.mli: Ast Cqp_relal
