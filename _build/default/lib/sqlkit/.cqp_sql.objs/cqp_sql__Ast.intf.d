lib/sqlkit/ast.mli: Cqp_relal
