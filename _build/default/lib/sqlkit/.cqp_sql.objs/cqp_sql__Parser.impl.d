lib/sqlkit/parser.ml: Ast Cqp_relal Lexer List Printf
