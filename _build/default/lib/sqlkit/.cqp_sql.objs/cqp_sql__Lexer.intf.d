lib/sqlkit/lexer.mli: Format
