lib/sqlkit/lexer.ml: Buffer Format List Printf String
