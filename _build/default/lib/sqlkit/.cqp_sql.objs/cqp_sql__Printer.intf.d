lib/sqlkit/printer.mli: Ast Format
