lib/sqlkit/ast.ml: Cqp_relal List
