open Ast
module Value = Cqp_relal.Value
module Schema = Cqp_relal.Schema
module Catalog = Cqp_relal.Catalog

exception Semantic_error of string

type binding = {
  alias : string;
  source : source;
  columns : (string * Value.ty) list;
}

and source = Base of string | Derived of Ast.query

type env = binding list

let fail fmt = Format.kasprintf (fun msg -> raise (Semantic_error msg)) fmt

let rec has_aggregate = function
  | Count_star | Count _ | Min _ | Max _ | Sum _ | Avg _ -> true
  | Col _ | Lit _ -> false

and is_aggregate_free e = not (has_aggregate e)

(* Mutual recursion: deriving the schema of a sub-query in FROM requires
   analyzing that sub-query. *)
let rec block_env catalog (b : select_block) : env =
  let bindings =
    List.map
      (function
        | Table (name, alias) -> (
            match Catalog.find catalog name with
            | None -> fail "unknown relation %s" name
            | Some rel ->
                let schema = Cqp_relal.Relation.schema rel in
                {
                  alias = Option.value alias ~default:name;
                  source = Base name;
                  columns =
                    List.map
                      (fun a -> (a.Schema.attr_name, a.Schema.attr_ty))
                      schema.Schema.attrs;
                })
        | Subquery (q, alias) ->
            { alias; source = Derived q; columns = schema_of catalog q })
      b.from
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun bd ->
      if Hashtbl.mem seen bd.alias then
        fail "duplicate alias %s in FROM" bd.alias;
      Hashtbl.add seen bd.alias ())
    bindings;
  bindings

and resolve (env : env) qualifier column =
  let column = String.lowercase_ascii column in
  match qualifier with
  | Some q -> (
      let q = String.lowercase_ascii q in
      match
        List.mapi (fun i bd -> (i, bd)) env
        |> List.find_opt (fun (_, bd) -> bd.alias = q)
      with
      | None -> fail "unknown table alias %s" q
      | Some (i, bd) -> (
          let rec find j = function
            | [] -> fail "no column %s in %s" column q
            | (name, ty) :: _ when name = column -> (i, j, ty)
            | _ :: rest -> find (j + 1) rest
          in
          match bd.columns with cols -> find 0 cols))
  | None -> (
      let hits =
        List.concat
          (List.mapi
             (fun i bd ->
               List.concat
                 (List.mapi
                    (fun j (name, ty) ->
                      if name = column then [ (i, j, ty) ] else [])
                    bd.columns))
             env)
      in
      match hits with
      | [ hit ] -> hit
      | [] -> fail "unknown column %s" column
      | _ -> fail "ambiguous column %s" column)

and expr_ty env = function
  | Col (q, name) ->
      let _, _, ty = resolve env q name in
      ty
  | Lit v -> Value.type_of v
  | Count_star -> Value.Tint
  | Count e ->
      ignore (expr_ty env e);
      Value.Tint
  | Sum e | Avg e -> (
      match expr_ty env e with
      | (Value.Tint | Value.Tfloat | Value.Tnull) -> Value.Tfloat
      | ty -> fail "sum/avg over non-numeric %s" (Value.ty_name ty))
  | Min e | Max e -> expr_ty env e

and check_predicate env p =
  let rec go = function
    | True -> ()
    | Cmp (_, l, r) ->
        let tl = expr_ty env l and tr = expr_ty env r in
        if not (Value.compatible tl tr) then
          fail "type mismatch: %s vs %s in %s" (Value.ty_name tl)
            (Value.ty_name tr)
            (* late import to avoid a cycle with Printer *)
            "comparison"
    | And (a, b) | Or (a, b) ->
        go a;
        go b
    | Not q -> go q
    | In_list (e, vs) ->
        let te = expr_ty env e in
        List.iter
          (fun v ->
            if not (Value.compatible te (Value.type_of v)) then
              fail "type mismatch in IN list")
          vs
    | Like (e, _) -> (
        match expr_ty env e with
        | Value.Tstring | Value.Tnull -> ()
        | ty -> fail "LIKE over non-string %s" (Value.ty_name ty))
    | Is_null e | Is_not_null e -> ignore (expr_ty env e)
  in
  go p

and expand_items env items =
  List.concat_map
    (function
      | Star ->
          List.concat_map
            (fun bd ->
              List.map (fun (name, _) -> Col (Some bd.alias, name)) bd.columns)
            env
      | Item (e, _) -> [ e ])
    items

and item_names env items =
  List.concat_map
    (function
      | Star ->
          List.concat_map
            (fun bd -> List.map fst bd.columns)
            env
      | Item (Col (_, name), None) -> [ name ]
      | Item (e, None) -> [ synth_name e ]
      | Item (_, Some alias) -> [ alias ])
    items

and synth_name = function
  | Col (_, name) -> name
  | Lit _ -> "literal"
  | Count_star | Count _ -> "count"
  | Min _ -> "min"
  | Max _ -> "max"
  | Sum _ -> "sum"
  | Avg _ -> "avg"

and check_block catalog b =
  if b.from = [] then fail "empty FROM clause";
  if b.items = [] then fail "empty SELECT list";
  let env = block_env catalog b in
  let exprs = expand_items env b.items in
  List.iter (fun e -> ignore (expr_ty env e)) exprs;
  (match b.where with
  | None -> ()
  | Some p ->
      let rec no_agg = function
        | True -> ()
        | Cmp (_, l, r) ->
            if has_aggregate l || has_aggregate r then
              fail "aggregate in WHERE clause"
        | And (a, c) | Or (a, c) ->
            no_agg a;
            no_agg c
        | Not q -> no_agg q
        | In_list (e, _) | Like (e, _) | Is_null e | Is_not_null e ->
            if has_aggregate e then fail "aggregate in WHERE clause"
      in
      no_agg p;
      check_predicate env p);
  List.iter
    (fun e ->
      if has_aggregate e then fail "aggregate in GROUP BY";
      ignore (expr_ty env e))
    b.group_by;
  (match b.having with
  | None -> ()
  | Some p ->
      if b.group_by = [] then fail "HAVING without GROUP BY";
      check_predicate env p);
  if b.group_by <> [] then begin
    let grouped e = List.exists (equal_expr e) b.group_by in
    List.iter
      (fun e ->
        if is_aggregate_free e && not (grouped e) then
          fail "non-grouped expression in SELECT with GROUP BY")
      exprs
  end
  else if List.exists has_aggregate exprs && List.exists is_aggregate_free exprs
  then fail "mix of aggregated and plain expressions without GROUP BY";
  List.iter (fun (e, _) -> ignore (expr_ty env e)) b.order_by;
  (match b.limit with
  | Some k when k < 0 -> fail "negative LIMIT"
  | _ -> ());
  let names = item_names env b.items in
  let tys = List.map (expr_ty env) exprs in
  List.combine names tys

and schema_of catalog q =
  match q with
  | Select b -> check_block catalog b
  | Union_all [] -> fail "empty UNION"
  | Union_all (first :: rest) ->
      let s0 = schema_of catalog first in
      List.iter
        (fun sub ->
          let s = schema_of catalog sub in
          if List.length s <> List.length s0 then
            fail "UNION branches differ in arity";
          List.iter2
            (fun (_, t0) (_, t) ->
              if not (Value.compatible t0 t) then
                fail "UNION branches differ in column types")
            s0 s)
        rest;
      s0

let check catalog q = ignore (schema_of catalog q)
let output_schema = schema_of
