(** Hand-rolled SQL lexer.

    Produces a token stream over an input string.  Keywords are
    case-insensitive; identifiers are lowercased; string literals use
    single quotes with [''] as the escape for a quote. *)

type token =
  | Ident of string  (** lowercased identifier *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Kw of string  (** uppercase keyword, e.g. ["SELECT"] *)
  | Punct of string  (** one of [( ) , . * = <> != < <= > >=] *)
  | Eof

exception Lex_error of string * int  (** message, byte position *)

val keywords : string list
(** The recognized keyword set (uppercase). *)

val tokenize : string -> (token * int) list
(** All tokens with their starting byte positions, ending with [Eof].
    @raise Lex_error on an unexpected character or unterminated
    string. *)

val pp_token : Format.formatter -> token -> unit
