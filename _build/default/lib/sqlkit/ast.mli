(** Abstract syntax of the SQL subset manipulated by CQP.

    The subset covers what query personalization produces and consumes:
    select-project-join blocks, [UNION ALL] of such blocks, and a
    [GROUP BY ... HAVING] wrapper used by the personalized-query
    construction of Section 4.2 of the paper
    ([... GROUP BY title HAVING count( * ) = L]). *)

type binop = Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | Col of string option * string
      (** optionally qualified column reference, [M.title] or [title] *)
  | Lit of Cqp_relal.Value.t
  | Count_star
  | Count of expr
  | Min of expr
  | Max of expr
  | Sum of expr
  | Avg of expr

type predicate =
  | True
  | Cmp of binop * expr * expr
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate
  | In_list of expr * Cqp_relal.Value.t list
  | Like of expr * string  (** SQL [LIKE] with [%] and [_] wildcards *)
  | Is_null of expr
  | Is_not_null of expr

type order_dir = Asc | Desc

type select_item =
  | Star
  | Item of expr * string option  (** expression with optional alias *)

type from_item =
  | Table of string * string option  (** relation name, optional alias *)
  | Subquery of query * string  (** derived table, mandatory alias *)

and select_block = {
  distinct : bool;
  items : select_item list;
  from : from_item list;
  where : predicate option;
  group_by : expr list;
  having : predicate option;
  order_by : (expr * order_dir) list;
  limit : int option;
}

and query = Select of select_block | Union_all of query list

val simple_select :
  ?distinct:bool ->
  ?where:predicate ->
  ?group_by:expr list ->
  ?having:predicate ->
  ?order_by:(expr * order_dir) list ->
  ?limit:int ->
  select_item list ->
  from_item list ->
  query
(** Convenience constructor for a single block. *)

val conj : predicate list -> predicate
(** Right-nested conjunction; [conj [] = True]. *)

val conj_opt : predicate option -> predicate -> predicate option
(** Add a conjunct to an optional WHERE clause. *)

val flatten_union : query -> query
(** Collapse nested [Union_all] nodes into one level and drop
    single-branch unions. *)

val tables_of : query -> (string * string option) list
(** All base tables referenced anywhere in the query (with aliases),
    in syntactic order, including inside derived tables. *)

val predicate_conjuncts : predicate -> predicate list
(** Split a predicate on top-level [And] nodes. *)

val equal_expr : expr -> expr -> bool
val equal_predicate : predicate -> predicate -> bool
val equal : query -> query -> bool
