type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Kw of string
  | Punct of string
  | Eof

exception Lex_error of string * int

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "GROUP";
    "BY"; "HAVING"; "ORDER"; "ASC"; "DESC"; "LIMIT"; "UNION"; "ALL";
    "COUNT"; "MIN"; "MAX"; "SUM"; "AVG"; "AS"; "IN"; "LIKE"; "IS"; "NULL";
    "TRUE"; "FALSE"; "BETWEEN";
  ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let rec skip_ws i =
    if i < n then
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip_ws (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '-' ->
          (* line comment *)
          let rec eol j = if j < n && input.[j] <> '\n' then eol (j + 1) else j in
          skip_ws (eol (i + 2))
      | _ -> i
    else i
  in
  let rec lex i =
    let i = skip_ws i in
    if i >= n then emit Eof i
    else begin
      let c = input.[i] in
      if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        let word = String.sub input i (!j - i) in
        if is_keyword word then emit (Kw (String.uppercase_ascii word)) i
        else emit (Ident (String.lowercase_ascii word)) i;
        lex !j
      end
      else if is_digit c || (c = '-' && i + 1 < n && is_digit input.[i + 1])
      then begin
        (* The grammar has no binary arithmetic, so '-' before a digit
           is always a negative literal ('--' comments were handled by
           the whitespace skipper above). *)
        let j = ref (if c = '-' then i + 1 else i) in
        while !j < n && is_digit input.[!j] do
          incr j
        done;
        if
          !j < n
          && input.[!j] = '.'
          && !j + 1 < n
          && is_digit input.[!j + 1]
        then begin
          incr j;
          while !j < n && is_digit input.[!j] do
            incr j
          done;
          let s = String.sub input i (!j - i) in
          emit (Float_lit (float_of_string s)) i
        end
        else emit (Int_lit (int_of_string (String.sub input i (!j - i)))) i;
        lex !j
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error ("unterminated string literal", i))
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            str (j + 1)
          end
        in
        let next = str (i + 1) in
        emit (String_lit (Buffer.contents buf)) i;
        lex next
      end
      else begin
        let two =
          if i + 1 < n then Some (String.sub input i 2) else None
        in
        match two with
        | Some (("<>" | "!=" | "<=" | ">=") as op) ->
            emit (Punct op) i;
            lex (i + 2)
        | _ -> (
            match c with
            | '(' | ')' | ',' | '.' | '*' | '=' | '<' | '>' ->
                emit (Punct (String.make 1 c)) i;
                lex (i + 1)
            | _ ->
                raise
                  (Lex_error
                     (Printf.sprintf "unexpected character %C" c, i)))
      end
    end
  in
  lex 0;
  List.rev !tokens

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "ident %s" s
  | Int_lit i -> Format.fprintf ppf "int %d" i
  | Float_lit f -> Format.fprintf ppf "float %g" f
  | String_lit s -> Format.fprintf ppf "string %S" s
  | Kw k -> Format.fprintf ppf "keyword %s" k
  | Punct p -> Format.fprintf ppf "punct %s" p
  | Eof -> Format.fprintf ppf "eof"
