(** Semantic analysis: name resolution and type checking against a
    catalog.

    The analyzer validates a query before planning and computes its
    output schema.  It enforces the classical rules for the supported
    subset: tables must exist, FROM aliases must be unique, column
    references must resolve unambiguously, compared expressions must
    have compatible types, aggregates may only appear in SELECT/HAVING/
    ORDER BY, and with GROUP BY every non-aggregated output expression
    must be a grouping expression.  UNION ALL branches must agree in
    arity and column types. *)

exception Semantic_error of string

type binding = {
  alias : string;  (** the name a column qualifier matches *)
  source : source;
  columns : (string * Cqp_relal.Value.ty) list;  (** in schema order *)
}

and source =
  | Base of string  (** base relation name in the catalog *)
  | Derived of Ast.query

type env = binding list

val block_env : Cqp_relal.Catalog.t -> Ast.select_block -> env
(** Bindings introduced by a block's FROM clause, in order.
    @raise Semantic_error on unknown tables or duplicate aliases. *)

val resolve : env -> string option -> string -> int * int * Cqp_relal.Value.ty
(** [resolve env qualifier column] returns
    [(binding_index, column_index, type)].
    @raise Semantic_error when unresolvable or ambiguous. *)

val expr_ty : env -> Ast.expr -> Cqp_relal.Value.ty
(** Result type of an expression; aggregates over numerics are numeric,
    [count] is [Tint].
    @raise Semantic_error on unresolvable columns. *)

val check_predicate : env -> Ast.predicate -> unit
val check : Cqp_relal.Catalog.t -> Ast.query -> unit

val output_schema :
  Cqp_relal.Catalog.t -> Ast.query -> (string * Cqp_relal.Value.ty) list
(** Column names and types produced by the query, with [Star]
    expansion.  Runs the full {!check}. *)

val has_aggregate : Ast.expr -> bool
