open Ast

exception Parse_error of string * int

type state = { mutable toks : (Lexer.token * int) list }

let peek st =
  match st.toks with [] -> (Lexer.Eof, 0) | (t, p) :: _ -> (t, p)

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let error st msg =
  let _, pos = peek st in
  raise (Parse_error (msg, pos))

let expect_kw st kw =
  match peek st with
  | Lexer.Kw k, _ when k = kw -> advance st
  | _ -> error st (Printf.sprintf "expected %s" kw)

let expect_punct st p =
  match peek st with
  | Lexer.Punct q, _ when q = p -> advance st
  | _ -> error st (Printf.sprintf "expected %s" p)

let accept_kw st kw =
  match peek st with
  | Lexer.Kw k, _ when k = kw ->
      advance st;
      true
  | _ -> false

let accept_punct st p =
  match peek st with
  | Lexer.Punct q, _ when q = p ->
      advance st;
      true
  | _ -> false

let ident st =
  match next st with
  | Lexer.Ident name, _ -> name
  | _, pos -> raise (Parse_error ("expected identifier", pos))

let literal_of_token st =
  match next st with
  | Lexer.Int_lit i, _ -> Cqp_relal.Value.Int i
  | Lexer.Float_lit f, _ -> Cqp_relal.Value.Float f
  | Lexer.String_lit s, _ -> Cqp_relal.Value.String s
  | Lexer.Kw "NULL", _ -> Cqp_relal.Value.Null
  | Lexer.Kw "TRUE", _ -> Cqp_relal.Value.Bool true
  | Lexer.Kw "FALSE", _ -> Cqp_relal.Value.Bool false
  | _, pos -> raise (Parse_error ("expected literal", pos))

(* All parsers live in one recursive nest: predicates may contain
   parenthesized sub-predicates and FROM items may contain sub-queries. *)
let rec parse_expr st : expr =
  match peek st with
  | Lexer.Kw "COUNT", _ ->
      advance st;
      expect_punct st "(";
      if accept_punct st "*" then begin
        expect_punct st ")";
        Count_star
      end
      else begin
        let e = parse_expr st in
        expect_punct st ")";
        Count e
      end
  | Lexer.Kw (("MIN" | "MAX" | "SUM" | "AVG") as agg), _ ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      (match agg with
      | "MIN" -> Min e
      | "MAX" -> Max e
      | "SUM" -> Sum e
      | _ -> Avg e)
  | Lexer.Ident name, _ ->
      advance st;
      if accept_punct st "." then
        let col = ident st in
        Col (Some name, col)
      else Col (None, name)
  | (Lexer.Int_lit _ | Lexer.Float_lit _ | Lexer.String_lit _), _ ->
      Lit (literal_of_token st)
  | Lexer.Kw ("NULL" | "TRUE" | "FALSE"), _ -> Lit (literal_of_token st)
  | _, pos -> raise (Parse_error ("expected expression", pos))

and parse_comparison st : predicate =
  if accept_kw st "NOT" then Not (parse_comparison st)
  else if accept_punct st "(" then begin
    let p = parse_or st in
    expect_punct st ")";
    p
  end
  else begin
    let lhs = parse_expr st in
    match peek st with
    | Lexer.Punct "=", _ ->
        advance st;
        Cmp (Eq, lhs, parse_expr st)
    | Lexer.Punct ("<>" | "!="), _ ->
        advance st;
        Cmp (Neq, lhs, parse_expr st)
    | Lexer.Punct "<", _ ->
        advance st;
        Cmp (Lt, lhs, parse_expr st)
    | Lexer.Punct "<=", _ ->
        advance st;
        Cmp (Le, lhs, parse_expr st)
    | Lexer.Punct ">", _ ->
        advance st;
        Cmp (Gt, lhs, parse_expr st)
    | Lexer.Punct ">=", _ ->
        advance st;
        Cmp (Ge, lhs, parse_expr st)
    | Lexer.Kw "IN", _ ->
        advance st;
        expect_punct st "(";
        let rec values acc =
          let v = literal_of_token st in
          if accept_punct st "," then values (v :: acc)
          else List.rev (v :: acc)
        in
        let vs = values [] in
        expect_punct st ")";
        In_list (lhs, vs)
    | Lexer.Kw "LIKE", _ -> (
        advance st;
        match next st with
        | Lexer.String_lit pat, _ -> Like (lhs, pat)
        | _, pos -> raise (Parse_error ("expected LIKE pattern", pos)))
    | Lexer.Kw "IS", _ ->
        advance st;
        if accept_kw st "NOT" then begin
          expect_kw st "NULL";
          Is_not_null lhs
        end
        else begin
          expect_kw st "NULL";
          Is_null lhs
        end
    | Lexer.Kw "BETWEEN", _ ->
        (* Sugar: [x BETWEEN a AND b] parses to [x >= a and x <= b]. *)
        advance st;
        let lo = parse_expr st in
        expect_kw st "AND";
        let hi = parse_expr st in
        And (Cmp (Ge, lhs, lo), Cmp (Le, lhs, hi))
    | Lexer.Kw "NOT", _ -> (
        advance st;
        match peek st with
        | Lexer.Kw "LIKE", _ -> (
            advance st;
            match next st with
            | Lexer.String_lit pat, _ -> Not (Like (lhs, pat))
            | _, pos -> raise (Parse_error ("expected LIKE pattern", pos)))
        | Lexer.Kw "IN", _ ->
            advance st;
            expect_punct st "(";
            let rec values acc =
              let v = literal_of_token st in
              if accept_punct st "," then values (v :: acc)
              else List.rev (v :: acc)
            in
            let vs = values [] in
            expect_punct st ")";
            Not (In_list (lhs, vs))
        | Lexer.Kw "BETWEEN", _ ->
            advance st;
            let lo = parse_expr st in
            expect_kw st "AND";
            let hi = parse_expr st in
            Not (And (Cmp (Ge, lhs, lo), Cmp (Le, lhs, hi)))
        | _, pos ->
            raise (Parse_error ("expected LIKE, IN or BETWEEN after NOT", pos))
        )
    | _, pos -> raise (Parse_error ("expected comparison operator", pos))
  end

and parse_and st =
  let lhs = parse_comparison st in
  if accept_kw st "AND" then And (lhs, parse_and st) else lhs

and parse_or st =
  let lhs = parse_and st in
  if accept_kw st "OR" then Or (lhs, parse_or st) else lhs

and parse_select_item st =
  if accept_punct st "*" then Star
  else begin
    let e = parse_expr st in
    if accept_kw st "AS" then Item (e, Some (ident st))
    else
      match peek st with
      | Lexer.Ident alias, _ ->
          advance st;
          Item (e, Some alias)
      | _ -> Item (e, None)
  end

and parse_from_item st =
  if accept_punct st "(" then begin
    let q = parse_query st in
    expect_punct st ")";
    let alias =
      if accept_kw st "AS" then ident st
      else
        match peek st with
        | Lexer.Ident a, _ ->
            advance st;
            a
        | _, pos ->
            raise (Parse_error ("derived table requires an alias", pos))
    in
    Subquery (q, alias)
  end
  else begin
    let name = ident st in
    if accept_kw st "AS" then Table (name, Some (ident st))
    else
      match peek st with
      | Lexer.Ident alias, _ ->
          advance st;
          Table (name, Some alias)
      | _ -> Table (name, None)
  end

and parse_select st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let rec items acc =
    let item = parse_select_item st in
    if accept_punct st "," then items (item :: acc)
    else List.rev (item :: acc)
  in
  let items = items [] in
  expect_kw st "FROM";
  let rec sources acc =
    let src = parse_from_item st in
    if accept_punct st "," then sources (src :: acc)
    else List.rev (src :: acc)
  in
  let from = sources [] in
  let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec exprs acc =
        let e = parse_expr st in
        if accept_punct st "," then exprs (e :: acc)
        else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_or st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec keys acc =
        let e = parse_expr st in
        let dir =
          if accept_kw st "DESC" then Desc
          else begin
            ignore (accept_kw st "ASC");
            Asc
          end
        in
        if accept_punct st "," then keys ((e, dir) :: acc)
        else List.rev ((e, dir) :: acc)
      in
      keys []
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then
      match next st with
      | Lexer.Int_lit i, _ -> Some i
      | _, pos -> raise (Parse_error ("expected integer after LIMIT", pos))
    else None
  in
  Select { distinct; items; from; where; group_by; having; order_by; limit }

and parse_query st =
  let first = parse_select st in
  let rec unions acc =
    if accept_kw st "UNION" then begin
      expect_kw st "ALL";
      let nxt = parse_select st in
      unions (nxt :: acc)
    end
    else List.rev acc
  in
  match unions [ first ] with [ q ] -> q | qs -> Union_all qs

let with_input input f =
  let st = { toks = Lexer.tokenize input } in
  let result = f st in
  (match peek st with
  | Lexer.Eof, _ -> ()
  | _, pos -> raise (Parse_error ("trailing input", pos)));
  result

let parse input = with_input input parse_query
let parse_predicate input = with_input input parse_or
