type binop = Eq | Neq | Lt | Le | Gt | Ge

type expr =
  | Col of string option * string
  | Lit of Cqp_relal.Value.t
  | Count_star
  | Count of expr
  | Min of expr
  | Max of expr
  | Sum of expr
  | Avg of expr

type predicate =
  | True
  | Cmp of binop * expr * expr
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate
  | In_list of expr * Cqp_relal.Value.t list
  | Like of expr * string
  | Is_null of expr
  | Is_not_null of expr

type order_dir = Asc | Desc
type select_item = Star | Item of expr * string option

type from_item =
  | Table of string * string option
  | Subquery of query * string

and select_block = {
  distinct : bool;
  items : select_item list;
  from : from_item list;
  where : predicate option;
  group_by : expr list;
  having : predicate option;
  order_by : (expr * order_dir) list;
  limit : int option;
}

and query = Select of select_block | Union_all of query list

let simple_select ?(distinct = false) ?where ?(group_by = []) ?having
    ?(order_by = []) ?limit items from =
  Select { distinct; items; from; where; group_by; having; order_by; limit }

let rec conj = function
  | [] -> True
  | [ p ] -> p
  | p :: rest -> And (p, conj rest)

let conj_opt where p =
  match where with None -> Some p | Some w -> Some (And (w, p))

let rec flatten_union q =
  match q with
  | Select _ -> q
  | Union_all qs -> (
      let flat =
        List.concat_map
          (fun sub ->
            match flatten_union sub with
            | Union_all inner -> inner
            | single -> [ single ])
          qs
      in
      match flat with [ single ] -> single | qs -> Union_all qs)

let rec tables_of q =
  match q with
  | Union_all qs -> List.concat_map tables_of qs
  | Select b ->
      List.concat_map
        (function
          | Table (name, alias) -> [ (name, alias) ]
          | Subquery (sub, _) -> tables_of sub)
        b.from

let rec predicate_conjuncts = function
  | And (a, b) -> predicate_conjuncts a @ predicate_conjuncts b
  | True -> []
  | p -> [ p ]

let rec equal_expr a b =
  match a, b with
  | Col (qa, na), Col (qb, nb) -> qa = qb && na = nb
  | Lit va, Lit vb -> Cqp_relal.Value.equal va vb
  | Count_star, Count_star -> true
  | Count x, Count y
  | Min x, Min y
  | Max x, Max y
  | Sum x, Sum y
  | Avg x, Avg y ->
      equal_expr x y
  | ( ( Col _ | Lit _ | Count_star | Count _ | Min _ | Max _ | Sum _
      | Avg _ ),
      _ ) ->
      false

let rec equal_predicate a b =
  match a, b with
  | True, True -> true
  | Cmp (o1, l1, r1), Cmp (o2, l2, r2) ->
      o1 = o2 && equal_expr l1 l2 && equal_expr r1 r2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
      equal_predicate a1 a2 && equal_predicate b1 b2
  | Not p1, Not p2 -> equal_predicate p1 p2
  | In_list (e1, vs1), In_list (e2, vs2) ->
      equal_expr e1 e2
      && List.length vs1 = List.length vs2
      && List.for_all2 Cqp_relal.Value.equal vs1 vs2
  | Like (e1, p1), Like (e2, p2) -> equal_expr e1 e2 && p1 = p2
  | Is_null e1, Is_null e2 | Is_not_null e1, Is_not_null e2 ->
      equal_expr e1 e2
  | ( ( True | Cmp _ | And _ | Or _ | Not _ | In_list _ | Like _ | Is_null _
      | Is_not_null _ ),
      _ ) ->
      false

let equal_item a b =
  match a, b with
  | Star, Star -> true
  | Item (e1, a1), Item (e2, a2) -> equal_expr e1 e2 && a1 = a2
  | (Star | Item _), _ -> false

let rec equal qa qb =
  match qa, qb with
  | Union_all xs, Union_all ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Select a, Select b ->
      a.distinct = b.distinct
      && List.length a.items = List.length b.items
      && List.for_all2 equal_item a.items b.items
      && List.length a.from = List.length b.from
      && List.for_all2 equal_from a.from b.from
      && (match a.where, b.where with
         | None, None -> true
         | Some x, Some y -> equal_predicate x y
         | _ -> false)
      && List.length a.group_by = List.length b.group_by
      && List.for_all2 equal_expr a.group_by b.group_by
      && (match a.having, b.having with
         | None, None -> true
         | Some x, Some y -> equal_predicate x y
         | _ -> false)
      && List.length a.order_by = List.length b.order_by
      && List.for_all2
           (fun (e1, d1) (e2, d2) -> equal_expr e1 e2 && d1 = d2)
           a.order_by b.order_by
      && a.limit = b.limit
  | (Union_all _ | Select _), _ -> false

and equal_from a b =
  match a, b with
  | Table (n1, a1), Table (n2, a2) -> n1 = n2 && a1 = a2
  | Subquery (q1, a1), Subquery (q2, a2) -> a1 = a2 && equal q1 q2
  | (Table _ | Subquery _), _ -> false
