(** SQL pretty-printer: renders ASTs back to parseable SQL text. *)

val expr_to_string : Ast.expr -> string
val predicate_to_string : Ast.predicate -> string

val to_string : Ast.query -> string
(** Single-line rendering; [parse (to_string q)] is equal to [q] up to
    union flattening. *)

val pp : Format.formatter -> Ast.query -> unit
(** Indented multi-line rendering for display. *)
