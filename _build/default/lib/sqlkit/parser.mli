(** Recursive-descent parser for the CQP SQL subset.

    Grammar (informal):
    {v
    query      ::= select { UNION ALL select }
    select     ::= SELECT [DISTINCT] items FROM from
                   [WHERE pred] [GROUP BY exprs] [HAVING pred]
                   [ORDER BY expr [ASC|DESC] {, ...}] [LIMIT int]
    items      ::= * | item {, item}
    item       ::= expr [[AS] ident]
    from       ::= source {, source}
    source     ::= ident [ident] | ( query ) ident
    pred       ::= or-chain of AND/NOT/comparison/IN/LIKE/IS NULL
    expr       ::= column | literal | COUNT( * ) | COUNT|MIN|MAX|SUM|AVG(expr)
    v} *)

exception Parse_error of string * int  (** message, byte position *)

val parse : string -> Ast.query
(** Parse a full query.
    @raise Parse_error on syntax errors (including trailing input).
    @raise Lexer.Lex_error on lexical errors. *)

val parse_predicate : string -> Ast.predicate
(** Parse a standalone predicate (used for preference conditions such as
    ["genre.genre = 'musical'"]). *)
