open Ast

let binop_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec expr_to_string = function
  | Col (None, name) -> name
  | Col (Some q, name) -> q ^ "." ^ name
  | Lit v -> Cqp_relal.Value.to_sql v
  | Count_star -> "count(*)"
  | Count e -> "count(" ^ expr_to_string e ^ ")"
  | Min e -> "min(" ^ expr_to_string e ^ ")"
  | Max e -> "max(" ^ expr_to_string e ^ ")"
  | Sum e -> "sum(" ^ expr_to_string e ^ ")"
  | Avg e -> "avg(" ^ expr_to_string e ^ ")"

(* Precedence: Or < And < Not < atoms.  Parenthesize a child whose
   precedence is strictly lower than the context's; the parser
   right-nests chains of the same connective, so a left child at the
   same precedence is parenthesized too (keeps print/parse a structural
   round-trip). *)
let rec pred_to_string ~ctx p =
  let atom s level = if level < ctx then "(" ^ s ^ ")" else s in
  match p with
  | True -> "true"
  | Or (a, b) ->
      atom (pred_to_string ~ctx:1 a ^ " or " ^ pred_to_string ~ctx:0 b) 0
  | And (a, b) ->
      atom (pred_to_string ~ctx:2 a ^ " and " ^ pred_to_string ~ctx:1 b) 1
  | Not q -> "not " ^ pred_to_string ~ctx:2 q
  | Cmp (op, l, r) ->
      expr_to_string l ^ " " ^ binop_to_string op ^ " " ^ expr_to_string r
  | In_list (e, vs) ->
      expr_to_string e ^ " in ("
      ^ String.concat ", " (List.map Cqp_relal.Value.to_sql vs)
      ^ ")"
  | Like (e, pat) ->
      expr_to_string e ^ " like '"
      ^ String.concat "''" (String.split_on_char '\'' pat)
      ^ "'"
  | Is_null e -> expr_to_string e ^ " is null"
  | Is_not_null e -> expr_to_string e ^ " is not null"

let predicate_to_string p = pred_to_string ~ctx:0 p

let item_to_string = function
  | Star -> "*"
  | Item (e, None) -> expr_to_string e
  | Item (e, Some alias) -> expr_to_string e ^ " as " ^ alias

let rec from_to_string = function
  | Table (name, None) -> name
  | Table (name, Some alias) -> name ^ " " ^ alias
  | Subquery (q, alias) -> "(" ^ to_string q ^ ") " ^ alias

and block_to_string b =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "select ";
  if b.distinct then Buffer.add_string buf "distinct ";
  Buffer.add_string buf
    (String.concat ", " (List.map item_to_string b.items));
  Buffer.add_string buf " from ";
  Buffer.add_string buf
    (String.concat ", " (List.map from_to_string b.from));
  (match b.where with
  | None -> ()
  | Some p ->
      Buffer.add_string buf " where ";
      Buffer.add_string buf (predicate_to_string p));
  if b.group_by <> [] then begin
    Buffer.add_string buf " group by ";
    Buffer.add_string buf
      (String.concat ", " (List.map expr_to_string b.group_by))
  end;
  (match b.having with
  | None -> ()
  | Some p ->
      Buffer.add_string buf " having ";
      Buffer.add_string buf (predicate_to_string p));
  if b.order_by <> [] then begin
    Buffer.add_string buf " order by ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun (e, dir) ->
              expr_to_string e
              ^ match dir with Asc -> " asc" | Desc -> " desc")
            b.order_by))
  end;
  (match b.limit with
  | None -> ()
  | Some k ->
      Buffer.add_string buf " limit ";
      Buffer.add_string buf (string_of_int k));
  Buffer.contents buf

and to_string = function
  | Select b -> block_to_string b
  | Union_all qs ->
      String.concat " union all "
        (List.map
           (function
             | Select b -> block_to_string b
             | Union_all _ as nested -> "(" ^ to_string nested ^ ")")
           qs)

let rec pp ppf q =
  match q with
  | Select b -> pp_block ppf b
  | Union_all qs ->
      Format.pp_open_vbox ppf 0;
      List.iteri
        (fun i sub ->
          if i > 0 then Format.fprintf ppf "@ union all@ ";
          pp ppf sub)
        qs;
      Format.pp_close_box ppf ()

and pp_block ppf b =
  Format.pp_open_vbox ppf 2;
  Format.fprintf ppf "select %s%s"
    (if b.distinct then "distinct " else "")
    (String.concat ", " (List.map item_to_string b.items));
  Format.fprintf ppf "@ from %s"
    (String.concat ", " (List.map from_to_string b.from));
  (match b.where with
  | None -> ()
  | Some p -> Format.fprintf ppf "@ where %s" (predicate_to_string p));
  if b.group_by <> [] then
    Format.fprintf ppf "@ group by %s"
      (String.concat ", " (List.map expr_to_string b.group_by));
  (match b.having with
  | None -> ()
  | Some p -> Format.fprintf ppf "@ having %s" (predicate_to_string p));
  if b.order_by <> [] then
    Format.fprintf ppf "@ order by %s"
      (String.concat ", "
         (List.map
            (fun (e, dir) ->
              expr_to_string e
              ^ match dir with Asc -> " asc" | Desc -> " desc")
            b.order_by));
  (match b.limit with
  | None -> ()
  | Some k -> Format.fprintf ppf "@ limit %d" k);
  Format.pp_close_box ppf ()
