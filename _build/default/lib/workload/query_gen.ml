module Rng = Cqp_util.Rng

let templates =
  [
    "select title from movie";
    "select title, year from movie";
    "select title from movie where year >= %Y";
    "select title, duration from movie where year <= %Y";
    "select mid, title from movie";
  ]

(* Replace every occurrence of "%Y" in the template. *)
let instantiate template year =
  let needle = "%Y" in
  let buf = Buffer.create (String.length template) in
  let n = String.length template in
  let rec go i =
    if i >= n then ()
    else if
      i + 1 < n && String.sub template i 2 = needle
    then begin
      Buffer.add_string buf year;
      go (i + 2)
    end
    else begin
      Buffer.add_char buf template.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let generate ~rng catalog =
  let template = List.nth templates (Rng.int rng (List.length templates)) in
  let year = string_of_int (Rng.int_in rng 1960 2010) in
  let q = Cqp_sql.Parser.parse (instantiate template year) in
  Cqp_sql.Analyzer.check catalog q;
  q

let generate_many ~rng catalog n = List.init n (fun _ -> generate ~rng catalog)
