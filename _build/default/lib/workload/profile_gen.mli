(** Profile generator — the evaluation setting of [12] as used by the
    paper's Section 7: profiles with a broad, configurable range of doi
    values and deviations.

    Join preferences connect the schema's FK paths
    (movie→director, movie→genre, movie→casts→actor) with high dois;
    selection preferences target value-bearing attributes with values
    sampled from the actual data (so that estimated selectivities are
    meaningful) and dois drawn from the configured distribution. *)

type doi_distribution =
  | Uniform of float * float
  | Normal of { mean : float; stddev : float }
      (** clamped to [0.01, 1.0] *)

type config = {
  n_selections : int;  (** selection preferences per profile *)
  doi_dist : doi_distribution;
  join_doi_range : float * float;
}

val default_config : config
(** 50 selections, doi uniform in [0.05, 0.95], joins in [0.8, 1.0] —
    enough extractable preferences for the paper's K ∈ [10, 40]. *)

val generate :
  ?config:config ->
  rng:Cqp_util.Rng.t ->
  Cqp_relal.Catalog.t ->
  Cqp_prefs.Profile.t
(** Deterministic for a given generator state. *)

val figure1_profile : Cqp_prefs.Profile.t
(** The paper's Figure 1 example profile (over the Section-3 movie
    schema): musical genre 0.5, movie–genre join 0.9, movie–director
    join 1.0, director W. Allen 0.8. *)
