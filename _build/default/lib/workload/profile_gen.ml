module Rng = Cqp_util.Rng
module Profile = Cqp_prefs.Profile
module V = Cqp_relal.Value
module Catalog = Cqp_relal.Catalog
module Relation = Cqp_relal.Relation

type doi_distribution =
  | Uniform of float * float
  | Normal of { mean : float; stddev : float }

type config = {
  n_selections : int;
  doi_dist : doi_distribution;
  join_doi_range : float * float;
}

let default_config =
  {
    n_selections = 50;
    doi_dist = Uniform (0.05, 0.95);
    join_doi_range = (0.8, 1.0);
  }

let draw_doi rng = function
  | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
  | Normal { mean; stddev } ->
      min 1.0 (max 0.01 (Rng.normal rng ~mean ~stddev))

(* Attributes carrying user-facing values, with sampling weights. *)
let selection_targets =
  [|
    ("genre", "genre", 3);
    ("director", "name", 3);
    ("actor", "name", 3);
    ("movie", "year", 1);
    ("casts", "role", 1);
  |]

let sample_value rng catalog rel attr =
  match Catalog.find catalog rel with
  | None -> None
  | Some r ->
      let card = Relation.cardinality r in
      if card = 0 then None
      else begin
        let idx =
          Cqp_relal.Schema.index_of (Relation.schema r) attr
        in
        let block = Rng.int rng (Relation.blocks r) in
        let tuples = Relation.get_block r block in
        let t = tuples.(Rng.int rng (Array.length tuples)) in
        Some (Cqp_relal.Tuple.get t idx)
      end

let join_edges =
  [
    ("movie", "did", "director", "did");
    ("movie", "mid", "genre", "mid");
    ("movie", "mid", "casts", "mid");
    ("casts", "aid", "actor", "aid");
  ]

let generate ?(config = default_config) ~rng catalog =
  let jlo, jhi = config.join_doi_range in
  let profile =
    List.fold_left
      (fun p (r1, a1, r2, a2) ->
        if Catalog.mem catalog r1 && Catalog.mem catalog r2 then
          Profile.add_join p
            (Profile.join r1 a1 r2 a2 (jlo +. Rng.float rng (jhi -. jlo)))
        else p)
      Profile.empty join_edges
  in
  (* Expand the weighted target pool. *)
  let pool =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (rel, attr, w) -> Array.make w (rel, attr))
            selection_targets))
  in
  let seen = Hashtbl.create 64 in
  let rec add p remaining attempts =
    if remaining = 0 || attempts > config.n_selections * 40 then p
    else begin
      let rel, attr = Rng.choice rng pool in
      match sample_value rng catalog rel attr with
      | None -> add p remaining (attempts + 1)
      | Some v ->
          let key = (rel, attr, V.to_sql v) in
          if Hashtbl.mem seen key then add p remaining (attempts + 1)
          else begin
            Hashtbl.add seen key ();
            let doi = draw_doi rng config.doi_dist in
            add
              (Profile.add_selection p (Profile.selection rel attr v doi))
              (remaining - 1) (attempts + 1)
          end
    end
  in
  add profile config.n_selections 0

let figure1_profile =
  Profile.of_list
    [
      `Sel (Profile.selection "genre" "genre" (V.String "musical") 0.5);
      `Join (Profile.join "movie" "mid" "genre" "mid" 0.9);
      `Join (Profile.join "movie" "did" "director" "did" 1.0);
      `Sel (Profile.selection "director" "name" (V.String "W. Allen") 0.8);
    ]
