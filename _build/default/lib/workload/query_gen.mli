(** Query generator: the paper's experiments average over 10 queries
    per profile; we generate simple projection/selection queries
    anchored at the movie relation (the shape Section 4.2's rewriting
    applies to). *)

val templates : string list
(** The SQL templates ([%Y] is replaced by a year). *)

val generate : rng:Cqp_util.Rng.t -> Cqp_relal.Catalog.t -> Cqp_sql.Ast.query
val generate_many :
  rng:Cqp_util.Rng.t -> Cqp_relal.Catalog.t -> int -> Cqp_sql.Ast.query list
