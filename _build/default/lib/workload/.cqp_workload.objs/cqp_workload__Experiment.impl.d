lib/workload/experiment.ml: Cqp_prefs Cqp_relal Cqp_sql Cqp_util Imdb List Profile_gen Query_gen
