lib/workload/experiment.mli: Cqp_prefs Cqp_relal Cqp_sql Imdb Profile_gen
