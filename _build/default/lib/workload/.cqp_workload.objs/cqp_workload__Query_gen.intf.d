lib/workload/query_gen.mli: Cqp_relal Cqp_sql Cqp_util
