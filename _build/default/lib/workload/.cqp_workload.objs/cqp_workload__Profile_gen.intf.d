lib/workload/profile_gen.mli: Cqp_prefs Cqp_relal Cqp_util
