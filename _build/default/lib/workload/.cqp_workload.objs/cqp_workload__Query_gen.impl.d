lib/workload/query_gen.ml: Buffer Cqp_sql Cqp_util List String
