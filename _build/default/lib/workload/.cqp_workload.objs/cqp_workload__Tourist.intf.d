lib/workload/tourist.mli: Cqp_prefs Cqp_relal
