lib/workload/imdb.mli: Cqp_relal
