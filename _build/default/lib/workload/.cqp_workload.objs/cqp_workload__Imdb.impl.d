lib/workload/imdb.ml: Array Cqp_relal Cqp_util Hashtbl List Printf
