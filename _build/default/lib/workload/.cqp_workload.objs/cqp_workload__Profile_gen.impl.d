lib/workload/profile_gen.ml: Array Cqp_prefs Cqp_relal Cqp_util Hashtbl List
