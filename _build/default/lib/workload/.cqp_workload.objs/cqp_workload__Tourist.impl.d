lib/workload/tourist.ml: Cqp_prefs Cqp_relal Cqp_util Printf
