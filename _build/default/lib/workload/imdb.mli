(** Synthetic IMDB-like database.

    The paper evaluates on data from the Internet Movies Database [7]
    over the schema of Section 3 (MOVIE, DIRECTOR, GENRE).  We generate
    a deterministic synthetic equivalent — extended with ACTOR/CASTS
    for longer preference paths — whose sizes and value skews are
    configurable:

    {v
    movie(mid, title, year, duration, did)
    director(did, name)
    genre(mid, genre)          -- several genres per movie, Zipf-skewed
    actor(aid, name)
    casts(mid, aid, role)
    v} *)

type config = {
  n_movies : int;
  n_directors : int;
  n_actors : int;
  n_genres : int;  (** size of the genre vocabulary *)
  genres_per_movie : int;  (** average *)
  cast_per_movie : int;  (** average *)
  genre_skew : float;  (** Zipf exponent for genre popularity *)
  director_skew : float;
  year_range : int * int;
  block_size : int;
}

val default_config : config
(** 5000 movies, 400 directors, 2000 actors, 24 genres — sized so that
    a full scan of the movie relation costs a few tens of milliseconds
    under the 1 ms/block model, putting the paper's default
    [cmax = 400 ms] in the interesting 10–50% Supreme-Cost band. *)

val small_config : config
(** A few hundred tuples; for unit tests. *)

val genre_vocabulary : string array
val build : ?config:config -> seed:int -> unit -> Cqp_relal.Catalog.t
(** Deterministic for a given seed and configuration. *)

val movie_schema : Cqp_relal.Schema.t
val director_schema : Cqp_relal.Schema.t
val genre_schema : Cqp_relal.Schema.t
val actor_schema : Cqp_relal.Schema.t
val casts_schema : Cqp_relal.Schema.t
