(** Experiment setup shared by the benchmark harness and tests: one
    deterministic bundle of catalog + profiles + queries, averaged over
    in the way the paper describes ("each result is the average of 200
    different experiment runs: 20 profiles × 10 queries"). *)

type t = {
  seed : int;
  imdb : Imdb.config;
  profile : Profile_gen.config;
  n_profiles : int;
  n_queries : int;
}

val default : t
(** 20 profiles × 10 queries over the default IMDB configuration —
    the paper's setting.  Heavy; the harness also uses {!quick}. *)

val quick : t
(** A smaller averaging set (5 profiles × 4 queries) for fast runs. *)

type bundle = {
  catalog : Cqp_relal.Catalog.t;
  profiles : Cqp_prefs.Profile.t list;
  queries : Cqp_sql.Ast.query list;
}

val build : t -> bundle

val average :
  bundle ->
  (Cqp_prefs.Profile.t -> Cqp_sql.Ast.query -> float option) ->
  float
(** Mean of [f profile query] over the full cross product, ignoring
    [None] results (runs where the configuration yields no
    preferences); [nan] when every run is skipped. *)
