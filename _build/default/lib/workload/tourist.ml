module V = Cqp_relal.Value
module Rng = Cqp_util.Rng

type config = {
  n_restaurants : int;
  n_reviews : int;
  n_reviewers : int;
  block_size : int;
}

let default_config =
  { n_restaurants = 400; n_reviews = 1500; n_reviewers = 40; block_size = 512 }

let cities = [| "pisa"; "florence"; "siena"; "lucca" |]
let cuisines = [| "tuscan"; "seafood"; "pizza"; "vegetarian"; "fusion" |]

let restaurant_schema =
  Cqp_relal.Schema.make "restaurant"
    [
      ("rid", V.Tint, 8);
      ("name", V.Tstring, 24);
      ("city", V.Tstring, 16);
      ("cuisine", V.Tstring, 16);
      ("price", V.Tint, 8);
      ("rating", V.Tint, 8);
    ]

let review_schema =
  Cqp_relal.Schema.make "review"
    [ ("rid", V.Tint, 8); ("author", V.Tstring, 16); ("stars", V.Tint, 8) ]

let build ?(config = default_config) ~seed () =
  let rng = Rng.create seed in
  let cat = Cqp_relal.Catalog.create () in
  let restaurants =
    Cqp_relal.Relation.create ~block_size:config.block_size restaurant_schema
  in
  for rid = 1 to config.n_restaurants do
    Cqp_relal.Relation.insert restaurants
      (Cqp_relal.Tuple.make
         [
           V.Int rid;
           V.String (Printf.sprintf "Trattoria %03d" rid);
           V.String (Rng.choice rng cities);
           V.String (Rng.choice rng cuisines);
           V.Int (Rng.int_in rng 1 4);
           V.Int (Rng.int_in rng 1 5);
         ])
  done;
  Cqp_relal.Catalog.add cat restaurants;
  let reviews =
    Cqp_relal.Relation.create ~block_size:config.block_size review_schema
  in
  for _ = 1 to config.n_reviews do
    Cqp_relal.Relation.insert reviews
      (Cqp_relal.Tuple.make
         [
           V.Int (Rng.int_in rng 1 config.n_restaurants);
           V.String (Printf.sprintf "user%02d" (Rng.int_in rng 1 config.n_reviewers));
           V.Int (Rng.int_in rng 1 5);
         ])
  done;
  Cqp_relal.Catalog.add cat reviews;
  cat

let al_profile =
  Cqp_prefs.Profile.of_strings
    [
      ("restaurant.cuisine = 'tuscan'", 0.9);
      ("restaurant.cuisine = 'seafood'", 0.6);
      ("restaurant.price = 1", 0.5);
      ("restaurant.rating = 5", 0.8);
      ("restaurant.rating = 4", 0.4);
      ("restaurant.rid = review.rid", 0.7);
      ("review.stars = 5", 0.6);
    ]
