(** The introduction scenario's substrate: a synthetic tourist-
    information database (restaurants with city/cuisine/price/rating,
    plus user reviews) and "Al's" profile, for the mobile-personalization
    examples and the Policy tests. *)

type config = {
  n_restaurants : int;
  n_reviews : int;
  n_reviewers : int;
  block_size : int;
}

val default_config : config
(** 400 restaurants, 1500 reviews. *)

val cities : string array
val cuisines : string array

val build : ?config:config -> seed:int -> unit -> Cqp_relal.Catalog.t
(** Deterministic for a given seed. *)

val al_profile : Cqp_prefs.Profile.t
(** Al's preferences: strong for Tuscan food and top ratings, moderate
    for cheap places and seafood; reviews influence restaurants with
    doi 0.7. *)
