module V = Cqp_relal.Value
module Schema = Cqp_relal.Schema
module Relation = Cqp_relal.Relation
module Catalog = Cqp_relal.Catalog
module Rng = Cqp_util.Rng

type config = {
  n_movies : int;
  n_directors : int;
  n_actors : int;
  n_genres : int;
  genres_per_movie : int;
  cast_per_movie : int;
  genre_skew : float;
  director_skew : float;
  year_range : int * int;
  block_size : int;
}

let default_config =
  {
    n_movies = 5000;
    n_directors = 400;
    n_actors = 2000;
    n_genres = 24;
    genres_per_movie = 2;
    cast_per_movie = 3;
    genre_skew = 0.8;
    director_skew = 0.7;
    year_range = (1930, 2025);
    block_size = 8192;
  }

let small_config =
  {
    n_movies = 300;
    n_directors = 40;
    n_actors = 120;
    n_genres = 12;
    genres_per_movie = 2;
    cast_per_movie = 2;
    genre_skew = 0.8;
    director_skew = 0.7;
    year_range = (1960, 2020);
    block_size = 2048;
  }

let genre_vocabulary =
  [|
    "drama"; "comedy"; "action"; "thriller"; "romance"; "horror";
    "documentary"; "musical"; "animation"; "crime"; "adventure"; "fantasy";
    "scifi"; "mystery"; "western"; "war"; "biography"; "history"; "sport";
    "family"; "noir"; "short"; "music"; "news"; "reality"; "talkshow";
    "adult"; "lyric"; "experimental"; "silent";
  |]

let movie_schema =
  Schema.make "movie"
    [
      ("mid", V.Tint, 8);
      ("title", V.Tstring, 24);
      ("year", V.Tint, 8);
      ("duration", V.Tint, 8);
      ("did", V.Tint, 8);
    ]

let director_schema =
  Schema.make "director" [ ("did", V.Tint, 8); ("name", V.Tstring, 24) ]

let genre_schema =
  Schema.make "genre" [ ("mid", V.Tint, 8); ("genre", V.Tstring, 16) ]

let actor_schema =
  Schema.make "actor" [ ("aid", V.Tint, 8); ("name", V.Tstring, 24) ]

let casts_schema =
  Schema.make "casts"
    [ ("mid", V.Tint, 8); ("aid", V.Tint, 8); ("role", V.Tstring, 16) ]

let roles = [| "lead"; "support"; "cameo"; "voice"; "extra" |]

let person_name prefix i = Printf.sprintf "%s %04d" prefix i

let build ?(config = default_config) ~seed () =
  let rng = Rng.create seed in
  let catalog = Catalog.create () in
  let block_size = config.block_size in
  let directors =
    Relation.of_tuples ~block_size director_schema
      (List.init config.n_directors (fun i ->
           [| V.Int (i + 1); V.String (person_name "Director" (i + 1)) |]))
  in
  let actors =
    Relation.of_tuples ~block_size actor_schema
      (List.init config.n_actors (fun i ->
           [| V.Int (i + 1); V.String (person_name "Actor" (i + 1)) |]))
  in
  let movies = Relation.create ~block_size movie_schema in
  let genres = Relation.create ~block_size genre_schema in
  let casts = Relation.create ~block_size casts_schema in
  let lo_year, hi_year = config.year_range in
  let n_genres = min config.n_genres (Array.length genre_vocabulary) in
  for mid = 1 to config.n_movies do
    let did = Rng.zipf rng ~n:config.n_directors ~s:config.director_skew in
    Relation.insert movies
      [|
        V.Int mid;
        V.String (Printf.sprintf "Movie %05d" mid);
        V.Int (Rng.int_in rng lo_year hi_year);
        V.Int (Rng.int_in rng 60 210);
        V.Int did;
      |];
    (* Genres: 1 .. 2*avg-1 per movie, distinct, Zipf-popular. *)
    let n_g = Rng.int_in rng 1 (max 1 ((2 * config.genres_per_movie) - 1)) in
    let chosen = Hashtbl.create 4 in
    for _ = 1 to n_g do
      let g = Rng.zipf rng ~n:n_genres ~s:config.genre_skew - 1 in
      if not (Hashtbl.mem chosen g) then begin
        Hashtbl.add chosen g ();
        Relation.insert genres
          [| V.Int mid; V.String genre_vocabulary.(g) |]
      end
    done;
    let n_c = Rng.int_in rng 1 (max 1 ((2 * config.cast_per_movie) - 1)) in
    let cast_chosen = Hashtbl.create 4 in
    for _ = 1 to n_c do
      let aid = Rng.int_in rng 1 config.n_actors in
      if not (Hashtbl.mem cast_chosen aid) then begin
        Hashtbl.add cast_chosen aid ();
        Relation.insert casts
          [| V.Int mid; V.Int aid; V.String (Rng.choice rng roles) |]
      end
    done
  done;
  Catalog.add catalog movies;
  Catalog.add catalog directors;
  Catalog.add catalog genres;
  Catalog.add catalog actors;
  Catalog.add catalog casts;
  catalog
