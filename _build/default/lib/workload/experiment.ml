module Rng = Cqp_util.Rng

type t = {
  seed : int;
  imdb : Imdb.config;
  profile : Profile_gen.config;
  n_profiles : int;
  n_queries : int;
}

let default =
  {
    seed = 42;
    imdb = Imdb.default_config;
    profile = Profile_gen.default_config;
    n_profiles = 20;
    n_queries = 10;
  }

let quick = { default with n_profiles = 5; n_queries = 4 }

type bundle = {
  catalog : Cqp_relal.Catalog.t;
  profiles : Cqp_prefs.Profile.t list;
  queries : Cqp_sql.Ast.query list;
}

let build t =
  let catalog = Imdb.build ~config:t.imdb ~seed:t.seed () in
  let rng = Rng.create (t.seed * 7919) in
  let profiles =
    List.init t.n_profiles (fun _ ->
        Profile_gen.generate ~config:t.profile ~rng catalog)
  in
  let queries = Query_gen.generate_many ~rng catalog t.n_queries in
  { catalog; profiles; queries }

let average bundle f =
  let total = ref 0. and count = ref 0 in
  List.iter
    (fun profile ->
      List.iter
        (fun query ->
          match f profile query with
          | Some v ->
              total := !total +. v;
              incr count
          | None -> ())
        bundle.queries)
    bundle.profiles;
  if !count = 0 then nan else !total /. float_of_int !count
