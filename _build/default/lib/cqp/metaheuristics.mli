(** Generic combinatorial-optimization baselines for Problem 2.

    The related-work section argues that generic state-space methods —
    simulated annealing [10], genetic algorithms [5], tabu search [4] —
    apply to CQP but ignore its syntax-based partial orders.  These
    implementations make that comparison concrete: they optimize the
    same objective (doi, with infeasible states rejected) over bitset
    states with flip neighborhoods, and are benchmarked against the
    CQP-aware algorithms in the ablation experiment.

    All are deterministic given the {!Cqp_util.Rng.t} seed. *)

type budget = {
  evaluations : int;  (** parameter-evaluation budget per run *)
}

val default_budget : budget

val simulated_annealing :
  ?budget:budget ->
  ?initial_temperature:float ->
  ?cooling:float ->
  rng:Cqp_util.Rng.t ->
  Space.t ->
  cmax:float ->
  Solution.t

val genetic :
  ?budget:budget ->
  ?population:int ->
  ?mutation_rate:float ->
  rng:Cqp_util.Rng.t ->
  Space.t ->
  cmax:float ->
  Solution.t

val tabu :
  ?budget:budget ->
  ?tenure:int ->
  rng:Cqp_util.Rng.t ->
  Space.t ->
  cmax:float ->
  Solution.t
