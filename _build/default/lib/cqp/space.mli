(** A search space: the preference set [P] viewed through one of its
    order vectors, with memoizable parameter evaluation and
    instrumentation.

    Algorithms manipulate states of {e positions}; the space translates
    positions to preference identifiers (indices into
    [Pref_space.items], which is the D order) and evaluates the three
    query parameters of any state incrementally from per-item values. *)

type order = By_cost | By_doi | By_size

type t

val create : ?order:order -> Pref_space.t -> t
(** Default order is [By_cost].  [By_cost]/[By_size] require the C/S
    vectors ([Pref_space.build] with [All_orders]).
    @raise Invalid_argument when the needed vector is missing. *)

val order : t -> order
val k : t -> int
val pref_space : t -> Pref_space.t
val stats : t -> Instrument.t

val pref_id : t -> int -> int
(** Preference identifier at a position of the order vector. *)

val pos_cost : t -> int -> float
(** [cost(Q ∧ p)] of the single preference at a position — the
    increment a Horizontal2 insertion adds to a state's cost
    (Formula 6 makes state cost additive, so greedy climbs use this
    for O(1) neighbor pricing). *)

val pref_ids : t -> State.t -> int list
(** Sorted preference identifiers of a state. *)

val cost : t -> State.t -> float
(** Estimated cost of [Q ∧ Px] for the state (counts one parameter
    evaluation). *)

val doi : t -> State.t -> float
val size : t -> State.t -> float
val params : t -> State.t -> Params.t

val params_of_ids : t -> int list -> Params.t
(** Parameters of a set given directly as preference identifiers. *)

val item : t -> int -> Pref_space.item
(** Item by {e preference id} (not position). *)
