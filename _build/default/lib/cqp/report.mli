(** Human-readable personalization reports.

    Turns a search outcome into an explanation a user (or a developer
    debugging a profile) can read: which preferences were chosen, what
    each contributes to interest/cost/size, which high-interest
    preferences were left out and what would happen if they were
    forced in.  Built entirely from the outcome's preference space and
    solution — no re-execution. *)

type chosen = {
  pref_id : int;
  condition : string;  (** the preference's SQL condition *)
  doi : float;
  cost : float;  (** cost of its sub-query, ms *)
  kept_fraction : float;  (** share of Q's answer it keeps *)
}

type rejected = {
  r_pref_id : int;
  r_condition : string;
  r_doi : float;
  reason : string;
      (** e.g. "adding it would exceed the cost budget (431 > 400 ms)" *)
}

type t = {
  problem : string;
  chosen : chosen list;  (** in decreasing doi *)
  rejected : rejected list;
      (** unchosen preferences, best doi first, with the binding
          constraint each would violate (or a no-improvement note) *)
  totals : Params.t;
}

val build : Problem.t -> Pref_space.t -> Solution.t -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
