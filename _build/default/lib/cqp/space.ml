type order = By_cost | By_doi | By_size

type t = {
  order : order;
  ps : Pref_space.t;
  positions : int array;  (** position -> preference id *)
  item_cost : float array;  (** by preference id *)
  item_doi : float array;
  item_frac : float array;
  base_cost : float;
  base_size : float;
  stats : Instrument.t;
}

let create ?(order = By_cost) ps =
  let open Pref_space in
  let positions =
    match order with
    | By_doi -> Array.copy ps.d
    | By_cost ->
        if Array.length ps.c <> Array.length ps.items then
          invalid_arg "Space.create: C vector not built (use All_orders)";
        Array.copy ps.c
    | By_size ->
        if Array.length ps.s <> Array.length ps.items then
          invalid_arg "Space.create: S vector not built (use All_orders)";
        Array.copy ps.s
  in
  {
    order;
    ps;
    positions;
    item_cost = Array.map (fun it -> it.cost) ps.items;
    item_doi = Array.map (fun it -> it.doi) ps.items;
    item_frac =
      Array.map
        (fun it ->
          if Estimate.base_size ps.estimate > 0. then
            it.size /. Estimate.base_size ps.estimate
          else 0.)
        ps.items;
    base_cost = Estimate.base_cost ps.estimate;
    base_size = Estimate.base_size ps.estimate;
    stats = Instrument.create ();
  }

let order t = t.order
let k t = Array.length t.positions
let pref_space t = t.ps
let stats t = t.stats
let pref_id t pos = t.positions.(pos)
let pos_cost t pos = t.item_cost.(t.positions.(pos))

let pref_ids t state =
  List.sort Stdlib.compare (List.map (fun pos -> t.positions.(pos)) state)

let cost_of_ids t ids =
  List.fold_left (fun acc id -> acc +. t.item_cost.(id)) 0. ids

let doi_of_ids t ids =
  List.fold_left
    (fun acc id ->
      Estimate.combine_doi_incr t.ps.Pref_space.estimate acc t.item_doi.(id))
    0. ids

let size_of_ids t ids =
  List.fold_left (fun acc id -> acc *. t.item_frac.(id)) t.base_size ids

let cost t state =
  Instrument.eval t.stats;
  cost_of_ids t (List.map (fun pos -> t.positions.(pos)) state)

let doi t state =
  Instrument.eval t.stats;
  doi_of_ids t (List.map (fun pos -> t.positions.(pos)) state)

let size t state =
  Instrument.eval t.stats;
  size_of_ids t (List.map (fun pos -> t.positions.(pos)) state)

let params_of_ids t ids =
  Instrument.eval t.stats;
  if ids = [] then
    { Params.doi = 0.; cost = t.base_cost; size = t.base_size }
  else
    {
      Params.doi = doi_of_ids t ids;
      cost = cost_of_ids t ids;
      size = size_of_ids t ids;
    }

let params t state = params_of_ids t (List.map (fun pos -> t.positions.(pos)) state)

let item t id = t.ps.Pref_space.items.(id)
