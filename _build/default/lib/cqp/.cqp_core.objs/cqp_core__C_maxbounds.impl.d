lib/cqp/c_maxbounds.ml: Cost_phase2 Hashtbl Instrument List Rq Solution Space State
