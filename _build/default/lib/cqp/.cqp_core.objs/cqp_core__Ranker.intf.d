lib/cqp/ranker.mli: Cqp_prefs Cqp_relal Cqp_sql Solution Space
