lib/cqp/params.mli: Format
