lib/cqp/pareto.mli: Format Params Space
