lib/cqp/report.ml: Array Cqp_prefs Cqp_sql Estimate Format Fun List Option Params Pref_space Printf Problem Solution Space
