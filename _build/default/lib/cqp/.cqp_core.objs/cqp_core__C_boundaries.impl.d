lib/cqp/c_boundaries.ml: Cost_phase2 Hashtbl Instrument List Rq Solution Space State
