lib/cqp/interval.mli: Pref_space Solution Space State
