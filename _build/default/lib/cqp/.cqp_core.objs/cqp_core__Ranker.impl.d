lib/cqp/ranker.ml: Array Cqp_exec Cqp_prefs Cqp_relal Hashtbl List Pref_space Rewrite Solution Space Stdlib
