lib/cqp/personalizer.ml: Algorithm Cqp_exec Cqp_relal Cqp_sql Estimate List Logs Params Pref_space Problem Ranker Rewrite Solution Solver Space
