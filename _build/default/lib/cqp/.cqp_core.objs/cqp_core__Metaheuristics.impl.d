lib/cqp/metaheuristics.ml: Array Cqp_util List Params Solution Space
