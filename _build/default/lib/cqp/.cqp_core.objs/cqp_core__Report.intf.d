lib/cqp/report.mli: Format Params Pref_space Problem Solution
