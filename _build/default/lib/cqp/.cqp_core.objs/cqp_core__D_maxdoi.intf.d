lib/cqp/d_maxdoi.mli: Solution Space State
