lib/cqp/pareto.ml: Exhaustive Format Fun List Params Printf Space State Stdlib String
