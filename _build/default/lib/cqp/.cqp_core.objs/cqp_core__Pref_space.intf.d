lib/cqp/pref_space.mli: Cqp_prefs Estimate Format Params
