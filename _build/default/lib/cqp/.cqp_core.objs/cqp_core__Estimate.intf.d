lib/cqp/estimate.mli: Cqp_prefs Cqp_relal Cqp_sql Params
