lib/cqp/algorithm.ml: C_boundaries C_maxbounds D_heurdoi D_maxdoi D_singlemaxdoi Exhaustive Instrument List Pref_space Solution Space String Unix
