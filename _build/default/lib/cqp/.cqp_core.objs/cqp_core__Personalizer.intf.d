lib/cqp/personalizer.mli: Algorithm Cqp_prefs Cqp_relal Cqp_sql Logs Pref_space Problem Ranker Solution
