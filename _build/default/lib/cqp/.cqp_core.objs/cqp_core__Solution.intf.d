lib/cqp/solution.mli: Cqp_prefs Format Instrument Params Space
