lib/cqp/d_heurdoi.ml: Array Instrument Pref_space Solution Space State
