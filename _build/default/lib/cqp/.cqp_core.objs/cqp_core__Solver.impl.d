lib/cqp/solver.ml: Algorithm Array Estimate Fun Instrument List Option Params Pref_space Printf Problem Solution Space Stdlib
