lib/cqp/exhaustive.ml: Instrument Option Params Printf Problem Solution Space
