lib/cqp/space.mli: Instrument Params Pref_space State
