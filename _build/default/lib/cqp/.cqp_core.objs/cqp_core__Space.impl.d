lib/cqp/space.ml: Array Estimate Instrument List Params Pref_space Stdlib
