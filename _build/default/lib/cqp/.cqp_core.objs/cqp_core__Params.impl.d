lib/cqp/params.ml: Format
