lib/cqp/state.mli: Format
