lib/cqp/state.ml: Format List Stdlib String Sys
