lib/cqp/d_heurdoi.mli: Solution Space
