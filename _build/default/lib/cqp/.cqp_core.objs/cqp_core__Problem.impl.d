lib/cqp/problem.ml: Format Params
