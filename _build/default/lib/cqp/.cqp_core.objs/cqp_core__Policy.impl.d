lib/cqp/policy.ml: Cqp_prefs Cqp_relal Cqp_sql Estimate Option Personalizer Pref_space Printf Problem
