lib/cqp/cost_phase2.mli: Solution Space State
