lib/cqp/cost_phase2.ml: Hashtbl Instrument List Params Pref_space Solution Space State Stdlib
