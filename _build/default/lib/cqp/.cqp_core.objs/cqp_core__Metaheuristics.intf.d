lib/cqp/metaheuristics.mli: Cqp_util Solution Space
