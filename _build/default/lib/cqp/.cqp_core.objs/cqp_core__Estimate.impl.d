lib/cqp/estimate.ml: Cqp_prefs Cqp_relal Cqp_sql List Option Params
