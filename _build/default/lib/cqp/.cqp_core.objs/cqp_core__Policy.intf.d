lib/cqp/policy.mli: Algorithm Cqp_prefs Cqp_relal Personalizer Problem
