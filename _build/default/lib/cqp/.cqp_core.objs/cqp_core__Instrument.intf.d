lib/cqp/instrument.mli: Format State
