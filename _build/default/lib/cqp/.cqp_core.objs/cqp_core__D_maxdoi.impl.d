lib/cqp/d_maxdoi.ml: Hashtbl Instrument List Option Pref_space Rq Solution Space State Stdlib
