lib/cqp/c_maxbounds.mli: Solution Space State
