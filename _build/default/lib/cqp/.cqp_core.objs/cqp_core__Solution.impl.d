lib/cqp/solution.ml: Format Instrument List Params Pref_space Space Stdlib String
