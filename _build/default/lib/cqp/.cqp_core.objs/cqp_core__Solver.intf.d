lib/cqp/solver.mli: Algorithm Params Pref_space Problem Solution Space
