lib/cqp/pref_space.ml: Array Cqp_prefs Cqp_relal Cqp_sql Estimate Format Hashtbl List Params Stdlib String
