lib/cqp/d_singlemaxdoi.ml: Hashtbl Instrument List Pref_space Rq Solution Space State
