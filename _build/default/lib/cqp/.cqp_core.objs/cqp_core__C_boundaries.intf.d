lib/cqp/c_boundaries.mli: Solution Space State
