lib/cqp/rq.mli: Instrument State
