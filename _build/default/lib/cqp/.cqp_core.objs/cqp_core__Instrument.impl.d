lib/cqp/instrument.ml: Format State
