lib/cqp/exhaustive.mli: Problem Solution Space
