lib/cqp/rewrite.ml: Cqp_prefs Cqp_relal Cqp_sql Format Hashtbl List Option
