lib/cqp/rq.ml: Instrument List State
