lib/cqp/rewrite.mli: Cqp_prefs Cqp_relal Cqp_sql
