lib/cqp/d_singlemaxdoi.mli: Solution Space
