lib/cqp/algorithm.mli: Pref_space Solution Space
