lib/cqp/problem.mli: Format Params
