lib/cqp/interval.ml: Array Estimate Hashtbl Instrument List Option Params Pref_space Rq Solution Space State Stdlib
