type objective = Maximize_doi | Minimize_cost

type t = {
  number : int;
  objective : objective;
  constraints : Params.constraints;
}

let problem1 ~smin ~smax =
  {
    number = 1;
    objective = Maximize_doi;
    constraints = Params.make ~smin ~smax ();
  }

let problem2 ~cmax =
  { number = 2; objective = Maximize_doi; constraints = Params.make ~cmax () }

let problem3 ~cmax ~smin ~smax =
  {
    number = 3;
    objective = Maximize_doi;
    constraints = Params.make ~cmax ~smin ~smax ();
  }

let problem4 ~dmin =
  { number = 4; objective = Minimize_cost; constraints = Params.make ~dmin () }

let problem5 ~dmin ~smin ~smax =
  {
    number = 5;
    objective = Minimize_cost;
    constraints = Params.make ~dmin ~smin ~smax ();
  }

let problem6 ~smin ~smax =
  {
    number = 6;
    objective = Minimize_cost;
    constraints = Params.make ~smin ~smax ();
  }

let describe t =
  let obj =
    match t.objective with
    | Maximize_doi -> "maximize doi"
    | Minimize_cost -> "minimize cost"
  in
  Format.asprintf "Problem %d: %s subject to%a" t.number obj
    Params.pp_constraints t.constraints

let better t a b =
  match t.objective with
  | Maximize_doi -> a > b
  | Minimize_cost -> a < b

let objective_value t (p : Params.t) =
  match t.objective with
  | Maximize_doi -> p.Params.doi
  | Minimize_cost -> p.Params.cost

let pp ppf t = Format.pp_print_string ppf (describe t)
