(** The algorithms' work queue RQ: a deque of states supporting
    insertion at both ends (Vertical neighbors go to the head so a
    group is finished before the next one starts; Horizontal neighbors
    go to the tail).  Holding/releasing is reported to the given
    instrumentation so queue residency contributes to the memory
    high-water mark. *)

type t

val create : Instrument.t -> t
val is_empty : t -> bool
val length : t -> int
val push_head : t -> State.t -> unit
val push_tail : t -> State.t -> unit

val pop : t -> State.t option
(** Remove and return the head. *)
