type t = { pref_ids : int list; params : Params.t; stats : Instrument.t }

let empty space =
  {
    pref_ids = [];
    params = Space.params_of_ids space [];
    stats = Instrument.snapshot (Space.stats space);
  }

let of_ids space ids =
  let ids = List.sort_uniq Stdlib.compare ids in
  {
    pref_ids = ids;
    params = Space.params_of_ids space ids;
    stats = Instrument.snapshot (Space.stats space);
  }

let paths space t =
  List.map
    (fun id -> (Space.item space id).Pref_space.path)
    t.pref_ids

let pp ppf t =
  Format.fprintf ppf "PU = {%s} %a"
    (String.concat ", " (List.map (fun i -> "p" ^ string_of_int (i + 1)) t.pref_ids))
    Params.pp t.params
