module Ast = Cqp_sql.Ast
module Path = Cqp_prefs.Path
module Profile = Cqp_prefs.Profile

exception Rewrite_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Rewrite_error m)) fmt

let block_of = function
  | Ast.Select b -> b
  | Ast.Union_all _ -> fail "initial query must be a single SELECT block"

let base_tables b =
  List.map
    (function
      | Ast.Table (name, alias) -> (name, Option.value alias ~default:name)
      | Ast.Subquery _ -> fail "initial query must range over base tables")
    b.Ast.from

(* Fresh alias for a path relation, avoiding every name already in
   scope. *)
let fresh_alias taken rel =
  let rec try_n n =
    let candidate = if n = 0 then rel ^ "_p" else rel ^ "_p" ^ string_of_int n in
    if List.mem candidate taken then try_n (n + 1) else candidate
  in
  try_n 0

let subquery_block catalog b path =
  ignore catalog;
  let tables = base_tables b in
  let anchor = Path.anchor path in
  let anchor_alias =
    match List.assoc_opt anchor tables with
    | Some alias -> alias
    | None -> (
        (* The anchor may be referenced under an alias only: accept a
           FROM item whose table name matches. *)
        match List.find_opt (fun (name, _) -> name = anchor) tables with
        | Some (_, alias) -> alias
        | None -> fail "anchor relation %s not in the query" anchor)
  in
  let taken = ref (List.map snd tables @ List.map fst tables) in
  (* Map each path relation to the alias its conditions should use. *)
  let alias_map = Hashtbl.create 8 in
  Hashtbl.add alias_map anchor anchor_alias;
  let extra_rels =
    match Path.relations path with [] -> [] | _anchor :: rest -> rest
  in
  let new_tables =
    List.map
      (fun rel ->
        let alias = fresh_alias !taken rel in
        taken := alias :: !taken;
        Hashtbl.replace alias_map rel alias;
        Ast.Table (rel, Some alias))
      extra_rels
  in
  let alias_of rel =
    match Hashtbl.find_opt alias_map rel with
    | Some a -> a
    | None -> fail "internal: no alias for path relation %s" rel
  in
  let join_pred (j : Profile.join) =
    Ast.Cmp
      ( Ast.Eq,
        Ast.Col (Some (alias_of j.j_from_rel), j.j_from_attr),
        Ast.Col (Some (alias_of j.j_to_rel), j.j_to_attr) )
  in
  let sel = path.Path.sel in
  let sel_pred =
    Ast.Cmp
      ( sel.Profile.s_op,
        Ast.Col (Some (alias_of sel.Profile.s_rel), sel.Profile.s_attr),
        Ast.Lit sel.Profile.s_value )
  in
  let pred = Ast.conj (List.map join_pred path.Path.joins @ [ sel_pred ]) in
  {
    b with
    Ast.from = b.Ast.from @ new_tables;
    where = Ast.conj_opt b.Ast.where pred;
  }

let subquery_of catalog q path =
  Ast.Select (subquery_block catalog (block_of q) path)

(* Output column names of the initial query, needed for the wrapper's
   SELECT/GROUP BY. *)
let output_names catalog q =
  match Cqp_sql.Analyzer.output_schema catalog q with
  | schema -> List.map fst schema
  | exception Cqp_sql.Analyzer.Semantic_error msg ->
      fail "initial query is not well-formed: %s" msg

let personalize ?(dedup = false) catalog q paths =
  match paths with
  | [] -> q
  | [ p ] -> subquery_of catalog q p
  | _ ->
      let b = block_of q in
      let names = output_names catalog q in
      if List.exists (fun n -> n = "literal") names then
        fail "initial query output columns must be named";
      (* Sub-queries: the plain SPJ part of Q extended per preference
         (ordering and limiting move to the wrapper). *)
      let inner_block =
        { b with Ast.order_by = []; limit = None; distinct = dedup }
      in
      let subqueries =
        List.map
          (fun p -> Ast.Select (subquery_block catalog inner_block p))
          paths
      in
      let union = Ast.Union_all subqueries in
      let cols = List.map (fun n -> Ast.Col (None, n)) names in
      let items = List.map (fun c -> Ast.Item (c, None)) cols in
      Ast.Select
        {
          Ast.distinct = false;
          items;
          from = [ Ast.Subquery (union, "qp") ];
          where = None;
          group_by = cols;
          having =
            Some
              (Ast.Cmp
                 ( Ast.Eq,
                   Ast.Count_star,
                   Ast.Lit (Cqp_relal.Value.Int (List.length paths)) ));
          order_by =
            (* Ordering keys now refer to the wrapper's output columns:
               strip qualifiers; keys that are not output columns cannot
               survive the union and are dropped. *)
            List.filter_map
              (fun (e, dir) ->
                match e with
                | Ast.Col (_, name) when List.mem name names ->
                    Some (Ast.Col (None, name), dir)
                | _ -> None)
              b.Ast.order_by;
          limit = b.Ast.limit;
        }

let personalize_merged catalog q paths =
  match paths with
  | [] -> q
  | _ ->
      let b = block_of q in
      (* Chain the per-preference extensions onto one block; fresh
         aliases accumulate because each call sees the previous call's
         additions in the FROM list. *)
      let merged =
        List.fold_left (fun blk p -> subquery_block catalog blk p) b paths
      in
      Ast.Select { merged with Ast.distinct = true }
