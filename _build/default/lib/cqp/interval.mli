(** The Section-6 dual-boundary search.

    For Problem 1 with both size bounds, the paper adapts the boundary
    algorithms: "two lists of boundaries are generated … the algorithm
    first finds a boundary corresponding to the upper limit
    [UpBoundaries] … then continues searching in the same group, as if
    the first boundary were not found, until a second boundary
    corresponding to the lower bound is found [LowBoundaries] … In the
    second phase, the algorithm checks the nodes between the upper and
    lower boundaries".

    We realize this on the {e additive-resource} view of the size
    constraint: [size(Q ∧ Px) = size(Q) · Π fracᵢ] turns
    [smin ≤ size ≤ smax] into [lo ≤ Σ rᵢ ≤ hi] with
    [rᵢ = −log fracᵢ], [lo = log(base/smax)], [hi = log(base/smin)].
    States are searched over the resource-descending order; phase two
    greedily maximizes doi below each upper boundary while keeping the
    resource above [lo].

    Like the paper's C-MAXBOUNDS, the overall procedure is a heuristic
    (the constrained greedy of phase two is not guaranteed optimal);
    tests compare it against the exact branch-and-bound and measure the
    gap. *)

type boundaries = {
  up : State.t list;  (** maximal states with resource ≤ hi *)
  low : State.t list;  (** same-group states with resource ≥ lo found past them *)
}

val find_boundaries : Space.t -> lo:float -> hi:float -> boundaries
(** Phase one.  The space's cost field must hold the additive
    resource (use {!of_size_bounds} to build it). *)

val solve : Space.t -> lo:float -> hi:float -> Solution.t option
(** Both phases: the best-doi node between the borderlines, [None]
    when no state fits the interval. *)

val of_size_bounds :
  Pref_space.t -> smin:float -> smax:float -> (Space.t * float * float) option
(** Build the transformed resource space and the [(lo, hi)] pair for a
    size interval; [None] when the interval is unsatisfiable outright
    (e.g. [smin > base size] means even adding every preference cannot
    help … actually [smin > base] rules out the empty set only — the
    caller gets the space and decides; [None] is returned when
    [smin > smax]). *)
