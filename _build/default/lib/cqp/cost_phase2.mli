(** C_FINDMAXDOI — the shared second phase of the cost-space algorithms
    (Figure 5).

    Given the boundaries found by phase one (states over the C vector),
    search {e below} each boundary for the node of maximum doi.  A
    position [k] of a boundary may be replaced by any position [j ≥ k]
    (a cheaper-or-equal preference), so the best node below a boundary
    is found greedily, most-constrained slot first, without evaluating
    dois: since [P] is sorted by decreasing doi, the slot just takes
    the smallest unused preference identifier available to it.
    Boundaries are examined in decreasing group size with the
    BestExpectedDoi early exit. *)

val find_max_doi : Space.t -> State.t list -> Solution.t
(** [find_max_doi space boundaries] — [space] must be cost-ordered. *)

val best_below : Space.t -> State.t -> int list
(** Preference ids of the maximum-doi node below one boundary (used by
    tests). *)
