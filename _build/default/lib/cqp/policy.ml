type device = Desktop | Laptop | Tablet | Palmtop | Phone
type network = Broadband | Wifi | Cellular | Offline_sync
type intent = Browse | Quick_answer | Exhaustive_research

type location = {
  loc_rel : string;
  loc_attr : string;
  loc_value : Cqp_relal.Value.t;
  loc_doi : float;
}

type context = {
  device : device;
  network : network;
  intent : intent;
  requested_answers : int option;
  location : location option;
}

let default_context =
  {
    device = Laptop;
    network = Wifi;
    intent = Browse;
    requested_answers = None;
    location = None;
  }

let at ?(doi = 1.0) loc_rel loc_attr loc_value =
  { loc_rel; loc_attr; loc_value; loc_doi = Cqp_prefs.Doi.check doi }

let localize ctx profile =
  match ctx.location with
  | None -> profile
  | Some l ->
      Cqp_prefs.Profile.add_selection profile
        (Cqp_prefs.Profile.selection l.loc_rel l.loc_attr l.loc_value
           l.loc_doi)

type tuning = {
  network_budget : network -> float;
  device_size_cap : device -> int option;
  quick_answer_dmin : float;
}

let default_tuning =
  {
    network_budget =
      (function
      | Broadband -> 0.8
      | Wifi -> 0.5
      | Cellular -> 0.15
      | Offline_sync -> 1.0);
    device_size_cap =
      (function
      | Desktop | Laptop -> None
      | Tablet -> Some 50
      | Palmtop -> Some 20
      | Phone -> Some 8);
    quick_answer_dmin = 0.6;
  }

let problem_of_context ?(tuning = default_tuning) ctx ~supreme_cost =
  let cost_budget = tuning.network_budget ctx.network *. supreme_cost in
  let size_cap =
    match ctx.requested_answers with
    | Some n -> Some (float_of_int n)
    | None -> Option.map float_of_int (tuning.device_size_cap ctx.device)
  in
  match ctx.intent, size_cap with
  | Exhaustive_research, _ -> Problem.problem2 ~cmax:(0.9 *. supreme_cost)
  | Browse, None -> Problem.problem2 ~cmax:cost_budget
  | Browse, Some cap -> Problem.problem3 ~cmax:cost_budget ~smin:1. ~smax:cap
  | Quick_answer, Some cap ->
      Problem.problem5 ~dmin:tuning.quick_answer_dmin ~smin:1. ~smax:cap
  | Quick_answer, None -> Problem.problem4 ~dmin:tuning.quick_answer_dmin

let device_to_string = function
  | Desktop -> "desktop"
  | Laptop -> "laptop"
  | Tablet -> "tablet"
  | Palmtop -> "palmtop"
  | Phone -> "phone"

let network_to_string = function
  | Broadband -> "broadband"
  | Wifi -> "wifi"
  | Cellular -> "cellular"
  | Offline_sync -> "offline-sync"

let intent_to_string = function
  | Browse -> "browse"
  | Quick_answer -> "quick answer"
  | Exhaustive_research -> "exhaustive research"

let describe ctx =
  Printf.sprintf "%s on %s, %s%s%s" (device_to_string ctx.device)
    (network_to_string ctx.network)
    (intent_to_string ctx.intent)
    (match ctx.requested_answers with
    | Some n -> Printf.sprintf ", up to %d answers" n
    | None -> "")
    (match ctx.location with
    | Some l ->
        Printf.sprintf ", at %s = %s" l.loc_attr
          (Cqp_relal.Value.to_string l.loc_value)
    | None -> "")

let run ?tuning ?algorithm ?max_k catalog profile ~sql ~context () =
  let profile = localize context profile in
  let query = Cqp_sql.Parser.parse sql in
  Cqp_sql.Analyzer.check catalog query;
  let estimate = Estimate.create catalog query in
  let probe = Pref_space.build ?max_k estimate profile in
  let supreme_cost = Pref_space.supreme_cost probe in
  let problem = problem_of_context ?tuning context ~supreme_cost in
  Personalizer.run ?algorithm ?max_k catalog profile ~sql ~problem ()
