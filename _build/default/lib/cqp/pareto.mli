(** Multi-objective CQP (the paper's Section 8 future work: "studying
    query personalization as a multi-objective constrained optimization
    problem, where more than one query parameter may be optimized
    simultaneously").

    Instead of optimizing one parameter under bounds on the others,
    compute the {e Pareto front} over (doi ↑, cost ↓): the
    personalizations not dominated by any other.  A point dominates
    another when its doi is no smaller and its cost no larger, strictly
    better in at least one.  Presented with the front, a
    context-mapping policy can pick a point without committing to a
    single Table-1 problem in advance.

    Size constraints, when given, filter candidates before the
    dominance pass. *)

type point = { pref_ids : int list; params : Params.t }

val exact_front :
  ?constraints:Params.constraints -> Space.t -> point list
(** The exact front by exhaustive enumeration, increasing cost (and
    therefore increasing doi).  Exponential in K: refuses K beyond
    {!Exhaustive.max_k}. *)

val greedy_front :
  ?constraints:Params.constraints -> Space.t -> point list
(** An approximate front in O(K²): the chain of personalizations built
    by repeatedly adding the preference with the best marginal
    doi-per-cost ratio.  Every returned point is feasible and mutually
    non-dominated; at most K+1 points. *)

val dominates : point -> point -> bool
val is_front : point list -> bool
(** All points mutually non-dominated (for tests). *)

val knee : point list -> point option
(** The "knee" of a front: the point maximizing the doi gain per unit
    cost relative to the front's extremes — a reasonable default choice
    for a policy with no other information.  [None] on an empty
    front. *)

val pp : Format.formatter -> point list -> unit
