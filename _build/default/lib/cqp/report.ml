type chosen = {
  pref_id : int;
  condition : string;
  doi : float;
  cost : float;
  kept_fraction : float;
}

type rejected = {
  r_pref_id : int;
  r_condition : string;
  r_doi : float;
  reason : string;
}

type t = {
  problem : string;
  chosen : chosen list;
  rejected : rejected list;
  totals : Params.t;
}

let condition_of ps id =
  Cqp_sql.Printer.predicate_to_string
    (Cqp_prefs.Path.condition ps.Pref_space.items.(id).Pref_space.path)

let build (problem : Problem.t) ps (solution : Solution.t) =
  let space = Space.create ~order:Space.By_doi ps in
  let base_size = Estimate.base_size ps.Pref_space.estimate in
  let item id = ps.Pref_space.items.(id) in
  let chosen =
    List.map
      (fun id ->
        let it = item id in
        {
          pref_id = id;
          condition = condition_of ps id;
          doi = it.Pref_space.doi;
          cost = it.Pref_space.cost;
          kept_fraction =
            (if base_size > 0. then it.Pref_space.size /. base_size else 0.);
        })
      solution.Solution.pref_ids
  in
  let constraints = problem.Problem.constraints in
  let rejected =
    List.init (Pref_space.k ps) Fun.id
    |> List.filter (fun id -> not (List.mem id solution.Solution.pref_ids))
    |> List.map (fun id ->
           let it = item id in
           let with_it =
             Space.params_of_ids space (id :: solution.Solution.pref_ids)
           in
           let reason =
             if Params.violates_cost constraints with_it then
               Printf.sprintf
                 "adding it would exceed the cost budget (%.0f > %.0f ms)"
                 with_it.Params.cost
                 (Option.value constraints.Params.cmax ~default:infinity)
             else if Params.violates_size constraints with_it then
               Printf.sprintf
                 "adding it would leave the result size out of bounds (%.1f)"
                 with_it.Params.size
             else
               match problem.Problem.objective with
               | Problem.Minimize_cost ->
                   Printf.sprintf
                     "not needed: the constraints already hold and it costs %.0f ms"
                     it.Pref_space.cost
               | Problem.Maximize_doi ->
                   (* Feasible but unchosen under doi maximization: a
                      cheaper combination achieved at least as much. *)
                   Printf.sprintf
                     "a combination without it reaches doi %.4f within the bounds"
                     solution.Solution.params.Params.doi
           in
           { r_pref_id = id; r_condition = condition_of ps id;
             r_doi = it.Pref_space.doi; reason })
  in
  {
    problem = Problem.describe problem;
    chosen;
    rejected;
    totals = solution.Solution.params;
  }

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf "%s@ " t.problem;
  Format.fprintf ppf "chosen (%d):@ " (List.length t.chosen);
  List.iter
    (fun c ->
      Format.fprintf ppf "  + p%d  doi %.3f, %.0f ms, keeps %.1f%%: %s@ "
        (c.pref_id + 1) c.doi c.cost
        (100. *. c.kept_fraction)
        c.condition)
    t.chosen;
  if t.rejected <> [] then begin
    Format.fprintf ppf "left out (%d):@ " (List.length t.rejected);
    List.iter
      (fun r ->
        Format.fprintf ppf "  - p%d  doi %.3f: %s@       %s@ "
          (r.r_pref_id + 1) r.r_doi r.r_condition r.reason)
      t.rejected
  end;
  Format.fprintf ppf "overall: %a" Params.pp t.totals;
  Format.pp_close_box ppf ()

let to_string t = Format.asprintf "%a" pp t
