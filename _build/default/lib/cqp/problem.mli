(** The CQP problem family (Table 1 of the paper).

    Each problem optimizes one query parameter while the others satisfy
    range constraints:

    {v
    #   objective        cost           doi          size
    1   MAX doi          -              -            smin <= size <= smax
    2   MAX doi          cost <= cmax   -            -
    3   MAX doi          cost <= cmax   -            smin <= size <= smax
    4   MIN cost         -              doi >= dmin  -
    5   MIN cost         -              doi >= dmin  smin <= size <= smax
    6   MIN cost         -              -            smin <= size <= smax
    v} *)

type objective = Maximize_doi | Minimize_cost

type t = {
  number : int;  (** 1..6, the paper's numbering *)
  objective : objective;
  constraints : Params.constraints;
}

val problem1 : smin:float -> smax:float -> t
val problem2 : cmax:float -> t
val problem3 : cmax:float -> smin:float -> smax:float -> t
val problem4 : dmin:float -> t
val problem5 : dmin:float -> smin:float -> smax:float -> t
val problem6 : smin:float -> smax:float -> t

val describe : t -> string
(** e.g. ["Problem 2: maximize doi subject to cost <= 400"]. *)

val better : t -> float -> float -> bool
(** [better p a b]: is objective value [a] strictly better than [b]
    under the problem's optimization direction? *)

val objective_value : t -> Params.t -> float
val pp : Format.formatter -> t -> unit
