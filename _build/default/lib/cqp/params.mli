(** Query parameters and range constraints (Section 4.1).

    A (personalized) query is characterized by three parameters: its
    degree of interest [doi], its execution [cost] (milliseconds under
    the block-I/O model), and its result [size] (tuples).  A CQP
    constraint set places an upper bound on cost, a lower bound on doi,
    and/or a size interval (the lower size bound defaults to 1 —
    "empty answers are always undesirable"). *)

type t = { doi : float; cost : float; size : float }

type constraints = {
  cmax : float option;  (** upper bound on execution cost *)
  dmin : float option;  (** lower bound on degree of interest *)
  smin : float option;  (** lower bound on result size (default 1) *)
  smax : float option;  (** upper bound on result size *)
}

val unconstrained : constraints
val with_cmax : float -> constraints
val make :
  ?cmax:float -> ?dmin:float -> ?smin:float -> ?smax:float -> unit ->
  constraints

val satisfies : constraints -> t -> bool
(** All present bounds hold (cost ≤ cmax, doi ≥ dmin,
    smin ≤ size ≤ smax). *)

val violates_cost : constraints -> t -> bool
val violates_doi : constraints -> t -> bool
val violates_size : constraints -> t -> bool

val pp : Format.formatter -> t -> unit
val pp_constraints : Format.formatter -> constraints -> unit
