(** Personalized Query Construction (Section 4.2).

    Given the initial query [Q] and the preference set [PU] selected by
    the search, build the final SQL:

    - one sub-query per preference, obtained by adding the preference
      path's relations to Q's FROM clause (under fresh aliases) and its
      join/selection conditions to the WHERE clause;
    - the final query as the UNION ALL of the sub-queries wrapped in
      [GROUP BY <output columns> HAVING count( * ) = L], which keeps
      exactly the tuples satisfying {e all} L preferences.

    [Q] must be a single SELECT block over base tables with named
    output columns (the shape query personalization applies to). *)

exception Rewrite_error of string

val subquery_of :
  Cqp_relal.Catalog.t ->
  Cqp_sql.Ast.query ->
  Cqp_prefs.Path.t ->
  Cqp_sql.Ast.query
(** [Q ∧ p] for a single preference.
    @raise Rewrite_error when [Q] has the wrong shape or the path's
    anchor relation does not appear in [Q]. *)

val personalize :
  ?dedup:bool ->
  Cqp_relal.Catalog.t ->
  Cqp_sql.Ast.query ->
  Cqp_prefs.Path.t list ->
  Cqp_sql.Ast.query
(** The full construction; with an empty list returns [Q] unchanged,
    with one preference returns the single sub-query (no wrapper
    needed).  ORDER BY / LIMIT / DISTINCT of [Q] move to the wrapper.

    [dedup] (default false, the paper's exact construction) makes every
    sub-query DISTINCT.  The paper's [HAVING count( * ) = L] test
    implicitly assumes each sub-query yields a tuple at most once; a
    preference path with a fan-out join (one movie, two matching genre
    rows) breaks that assumption and silently drops the tuple —
    [dedup:true] restores exact intersection semantics. *)

val personalize_merged :
  Cqp_relal.Catalog.t ->
  Cqp_sql.Ast.query ->
  Cqp_prefs.Path.t list ->
  Cqp_sql.Ast.query
(** The paper's footnote-1 optimization, implemented in its most
    general form: all preferences merged into one conjunctive
    sub-query, each path keeping its own fresh relation instances (so
    two genre preferences match {e different} genre rows of the same
    movie, exactly as the UNION construction does).  Returns the same
    bag of tuples as {!personalize} up to duplicates — the merged form
    is wrapped in SELECT DISTINCT to align the two — while scanning
    [Q]'s relations once instead of [L] times. *)
