(** The result of a CQP search: the preference subset [PU] to integrate
    into the query, its estimated parameters, and the search's
    instrumentation snapshot. *)

type t = {
  pref_ids : int list;
      (** sorted indices into [Pref_space.items]; empty when no
          feasible personalization exists (the query runs as-is) *)
  params : Params.t;
  stats : Instrument.t;
}

val empty : Space.t -> t
(** The no-personalization solution for a space. *)

val of_ids : Space.t -> int list -> t
val paths : Space.t -> t -> Cqp_prefs.Path.t list
(** The preference paths selected (for query rewriting). *)

val pp : Format.formatter -> t -> unit
