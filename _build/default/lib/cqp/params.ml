type t = { doi : float; cost : float; size : float }

type constraints = {
  cmax : float option;
  dmin : float option;
  smin : float option;
  smax : float option;
}

let unconstrained = { cmax = None; dmin = None; smin = None; smax = None }
let with_cmax c = { unconstrained with cmax = Some c }
let make ?cmax ?dmin ?smin ?smax () = { cmax; dmin; smin; smax }

let violates_cost c p =
  match c.cmax with Some b -> p.cost > b | None -> false

let violates_doi c p =
  match c.dmin with Some b -> p.doi < b | None -> false

let violates_size c p =
  (match c.smin with Some b -> p.size < b | None -> false)
  || match c.smax with Some b -> p.size > b | None -> false

let satisfies c p =
  (not (violates_cost c p))
  && (not (violates_doi c p))
  && not (violates_size c p)

let pp ppf p =
  Format.fprintf ppf "doi=%.4f cost=%.1fms size=%.1f" p.doi p.cost p.size

let pp_bound ppf (name, op, v) =
  match v with
  | None -> ()
  | Some x -> Format.fprintf ppf " %s %s %g" name op x

let pp_constraints ppf c =
  Format.fprintf ppf "{%a%a%a%a }" pp_bound
    ("cost", "<=", c.cmax)
    pp_bound ("doi", ">=", c.dmin) pp_bound ("size", ">=", c.smin) pp_bound
    ("size", "<=", c.smax)
