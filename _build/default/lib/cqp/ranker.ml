module Tuple = Cqp_relal.Tuple
module Doi = Cqp_prefs.Doi

type mode = All_of | Any_of

type ranked_row = {
  row : Tuple.t;
  satisfied : int list;
  score : float;
}

type result = { ranked : ranked_row list; block_reads : int }

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let rank ?(mode = Any_of) ?(r = Doi.Noisy_or) catalog q paths =
  match paths with
  | [] ->
      let res = Cqp_exec.Engine.execute catalog q in
      {
        ranked =
          List.map
            (fun row -> { row; satisfied = []; score = 0. })
            res.Cqp_exec.Engine.rows;
        block_reads = res.Cqp_exec.Engine.block_reads;
      }
  | _ ->
      let table : (int list * Tuple.t) Tuple_tbl.t = Tuple_tbl.create 256 in
      let order = ref [] in
      let io = ref 0 in
      List.iteri
        (fun i (path, _doi) ->
          let sub = Rewrite.subquery_of catalog q path in
          let res = Cqp_exec.Engine.execute catalog sub in
          io := !io + res.Cqp_exec.Engine.block_reads;
          (* A sub-query may yield duplicates (several genre rows per
             movie): count each tuple once per preference. *)
          let seen_here = Tuple_tbl.create 64 in
          List.iter
            (fun row ->
              if not (Tuple_tbl.mem seen_here row) then begin
                Tuple_tbl.add seen_here row ();
                match Tuple_tbl.find_opt table row with
                | Some (sats, orig) ->
                    Tuple_tbl.replace table row (i :: sats, orig)
                | None ->
                    Tuple_tbl.replace table row ([ i ], row);
                    order := row :: !order
              end)
            res.Cqp_exec.Engine.rows)
        paths;
      let n_paths = List.length paths in
      let dois = Array.of_list (List.map snd paths) in
      let rows =
        List.rev !order
        |> List.filter_map (fun row ->
               match Tuple_tbl.find_opt table row with
               | None -> None
               | Some (sats, _) ->
                   let satisfied = List.sort compare sats in
                   if mode = All_of && List.length satisfied < n_paths then
                     None
                   else begin
                     let score =
                       Doi.combine ~r
                         (List.map (fun i -> dois.(i)) satisfied)
                     in
                     Some { row; satisfied; score }
                   end)
      in
      let ranked =
        List.stable_sort (fun a b -> Stdlib.compare b.score a.score) rows
      in
      { ranked; block_reads = !io }

let rank_solution ?mode catalog q space (sol : Solution.t) =
  let paths =
    List.map
      (fun id ->
        let item = Space.item space id in
        (item.Pref_space.path, item.Pref_space.doi))
      sol.Solution.pref_ids
  in
  rank ?mode catalog q paths
