(** Result ranking (Section 3: "The results of a personalized query
    should be ranked by function r based on the preferences that they
    satisfy in a profile").

    The strict personalized query of Section 4.2 keeps only tuples
    satisfying {e all} L chosen preferences, where every survivor
    trivially carries the same score.  The ranker also supports the
    relaxed interpretation that makes scores informative: keep tuples
    satisfying {e at least one} preference (a
    [HAVING count( * ) >= 1] variant) and order them by
    [r(dois of the preferences satisfied)] — higher first, ties broken
    by result order. *)

type mode =
  | All_of  (** intersection semantics: tuples satisfying all prefs *)
  | Any_of  (** union semantics: tuples satisfying at least one *)

type ranked_row = {
  row : Cqp_relal.Tuple.t;
  satisfied : int list;  (** 0-based indices into the path list *)
  score : float;  (** conjunction doi of the satisfied preferences *)
}

type result = {
  ranked : ranked_row list;  (** best score first *)
  block_reads : int;  (** total I/O charged (one scan set per sub-query) *)
}

val rank :
  ?mode:mode ->
  ?r:Cqp_prefs.Doi.combine ->
  Cqp_relal.Catalog.t ->
  Cqp_sql.Ast.query ->
  (Cqp_prefs.Path.t * float) list ->
  result
(** [rank catalog q paths_with_dois] executes one sub-query per
    preference (the Section 4.2 construction) and scores each distinct
    output tuple.  With an empty path list, returns Q's own rows with
    score 0.  Default [mode] is [Any_of], default [r] the paper's
    noisy-or.
    @raise Rewrite.Rewrite_error when [q] has the wrong shape. *)

val rank_solution :
  ?mode:mode ->
  Cqp_relal.Catalog.t ->
  Cqp_sql.Ast.query ->
  Space.t ->
  Solution.t ->
  result
(** Convenience wrapper scoring with the solution's preference dois. *)
