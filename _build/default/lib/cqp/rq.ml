type t = {
  mutable front : State.t list;
  mutable back : State.t list;  (** reversed *)
  mutable size : int;
  stats : Instrument.t;
}

let create stats = { front = []; back = []; size = 0; stats }
let is_empty t = t.size = 0
let length t = t.size

let push_head t s =
  t.front <- s :: t.front;
  t.size <- t.size + 1;
  Instrument.hold t.stats s

let push_tail t s =
  t.back <- s :: t.back;
  t.size <- t.size + 1;
  Instrument.hold t.stats s

let pop t =
  (match t.front with
  | [] ->
      t.front <- List.rev t.back;
      t.back <- []
  | _ -> ());
  match t.front with
  | [] -> None
  | s :: rest ->
      t.front <- rest;
      t.size <- t.size - 1;
      Instrument.release t.stats s;
      Some s
