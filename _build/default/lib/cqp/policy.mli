(** Search-context policies.

    The paper defers "mapping the search context onto the appropriate
    CQP problem" to future work (Sections 1, 4.1 and 8: "a policy
    issue").  This module supplies the missing layer: a declarative
    description of the context — device, network, user intent, an
    explicit answer-count request — and a default, overridable mapping
    onto a Table-1 problem whose bounds scale with the query's Supreme
    Cost (so the same policy adapts to any database size).

    The default mapping implements the behaviour of the paper's
    introduction scenario: a laptop on a fast link gets
    interest-maximization under a generous budget; a palmtop on a
    cellular link gets tight cost and size bounds ("up to three
    restaurants" becomes [smax = 3]); a user in a hurry gets cost
    minimization under an interest floor. *)

type device = Desktop | Laptop | Tablet | Palmtop | Phone
type network = Broadband | Wifi | Cellular | Offline_sync
type intent = Browse | Quick_answer | Exhaustive_research

type location = {
  loc_rel : string;  (** relation carrying the location attribute *)
  loc_attr : string;
  loc_value : Cqp_relal.Value.t;  (** the user's current place *)
  loc_doi : float;  (** how strongly locality matters (1.0 = must) *)
}

type context = {
  device : device;
  network : network;
  intent : intent;
  requested_answers : int option;
      (** an explicit user request, e.g. "up to three restaurants" *)
  location : location option;
      (** the Section-8 "integration with location-based services":
          when present, a selection preference for the current place is
          injected into the profile before personalization, so locality
          competes with (or, at doi 1.0, dominates) the stored tastes *)
}

val default_context : context
(** Laptop, wifi, browse, no explicit request, no location. *)

val at : ?doi:float -> string -> string -> Cqp_relal.Value.t -> location
(** [at "restaurant" "city" (String "pisa")] — doi defaults to 1.0. *)

val localize :
  context -> Cqp_prefs.Profile.t -> Cqp_prefs.Profile.t
(** The profile with the context's location preference injected (the
    profile unchanged when the context carries none). *)

type tuning = {
  network_budget : network -> float;
      (** fraction of Supreme Cost allowed per network class *)
  device_size_cap : device -> int option;
      (** default answer cap per device class *)
  quick_answer_dmin : float;  (** interest floor in a hurry *)
}

val default_tuning : tuning

val problem_of_context :
  ?tuning:tuning -> context -> supreme_cost:float -> Problem.t
(** Pick the Table-1 problem and its bounds for a context. *)

val describe : context -> string

val run :
  ?tuning:tuning ->
  ?algorithm:Algorithm.t ->
  ?max_k:int ->
  Cqp_relal.Catalog.t ->
  Cqp_prefs.Profile.t ->
  sql:string ->
  context:context ->
  unit ->
  Personalizer.outcome
(** End-to-end: extract the preference space once to learn the Supreme
    Cost, map the context, and run the {!Personalizer}. *)
