exception Csv_error of string * int

let fail line fmt = Format.kasprintf (fun m -> raise (Csv_error (m, line))) fmt

let parse_line_at line_no s =
  let n = String.length s in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush ()
    else
      match s.[i] with
      | ',' ->
          flush ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then fail line_no "unterminated quoted field"
    else
      match s.[i] with
      | '"' when i + 1 < n && s.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> after_quote (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  and after_quote i =
    if i >= n then flush ()
    else
      match s.[i] with
      | ',' ->
          flush ();
          plain (i + 1)
      | c -> fail line_no "unexpected %C after closing quote" c
  in
  plain 0;
  List.rev !fields

let parse_line s = parse_line_at 0 s

let needs_quoting field =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field

let format_field field =
  if needs_quoting field then begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else field

let format_line fields = String.concat "," (List.map format_field fields)

let cell_of_string line_no (attr : Schema.attribute) raw =
  match attr.Schema.attr_ty with
  | Value.Tstring -> Value.String raw
  | Value.Tnull -> if raw = "" then Value.Null else Value.String raw
  | Value.Tint -> (
      if raw = "" then Value.Null
      else
        match int_of_string_opt (String.trim raw) with
        | Some i -> Value.Int i
        | None -> fail line_no "column %s: %S is not an int" attr.Schema.attr_name raw)
  | Value.Tfloat -> (
      if raw = "" then Value.Null
      else
        match float_of_string_opt (String.trim raw) with
        | Some f -> Value.Float f
        | None ->
            fail line_no "column %s: %S is not a float" attr.Schema.attr_name raw)
  | Value.Tbool -> (
      if raw = "" then Value.Null
      else
        match String.lowercase_ascii (String.trim raw) with
        | "true" | "1" -> Value.Bool true
        | "false" | "0" -> Value.Bool false
        | _ ->
            fail line_no "column %s: %S is not a bool" attr.Schema.attr_name raw)

(* Split a document into records; a naive newline split is wrong for
   quoted fields containing newlines, so track quote parity. *)
let records_of_string doc =
  let records = ref [] in
  let buf = Buffer.create 64 in
  let in_quotes = ref false in
  let flush () =
    records := Buffer.contents buf :: !records;
    Buffer.clear buf
  in
  String.iter
    (fun c ->
      match c with
      | '"' ->
          in_quotes := not !in_quotes;
          Buffer.add_char buf c
      | '\n' when not !in_quotes -> flush ()
      | '\r' when not !in_quotes -> ()
      | c -> Buffer.add_char buf c)
    doc;
  if Buffer.length buf > 0 then flush ();
  List.rev !records

let load_string ?block_size ?(header = true) schema doc =
  let records = records_of_string doc in
  let attrs = schema.Schema.attrs in
  let expect_arity = List.length attrs in
  let records, start_line =
    match records with
    | first :: rest when header ->
        let names = List.map String.lowercase_ascii (parse_line_at 1 first) in
        let expected = Schema.attr_names schema in
        if List.map String.trim names <> expected then
          fail 1 "header mismatch: expected %s"
            (String.concat "," expected);
        (rest, 2)
    | records -> (records, 1)
  in
  let rel = Relation.create ?block_size schema in
  List.iteri
    (fun i record ->
      let line_no = start_line + i in
      if String.trim record <> "" then begin
        let fields = parse_line_at line_no record in
        if List.length fields <> expect_arity then
          fail line_no "expected %d fields, got %d" expect_arity
            (List.length fields);
        let cells = List.map2 (cell_of_string line_no) attrs fields in
        Relation.insert rel (Tuple.make cells)
      end)
    records;
  rel

let load_file ?block_size ?header schema path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  load_string ?block_size ?header schema doc

let cell_to_string = function
  | Value.Null -> ""
  | v -> Value.to_string v

let to_string ?(header = true) rel =
  let buf = Buffer.create 1024 in
  let schema = Relation.schema rel in
  if header then begin
    Buffer.add_string buf (format_line (Schema.attr_names schema));
    Buffer.add_char buf '\n'
  end;
  Relation.iter
    (fun t ->
      Buffer.add_string buf
        (format_line (List.map cell_to_string (Tuple.to_list t)));
      Buffer.add_char buf '\n')
    rel;
  Buffer.contents buf

let save_file ?header rel path =
  let oc = open_out_bin path in
  output_string oc (to_string ?header rel);
  close_out oc
