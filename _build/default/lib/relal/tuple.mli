(** Tuples: immutable value arrays positionally matching a schema. *)

type t = Value.t array

val make : Value.t list -> t
val arity : t -> int
val get : t -> int -> Value.t
val project : t -> int list -> t
(** [project t idxs] keeps the cells at positions [idxs], in order. *)

val concat : t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_list : t -> Value.t list
val pp : Format.formatter -> t -> unit
