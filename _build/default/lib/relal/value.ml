type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type ty = Tnull | Tint | Tfloat | Tstring | Tbool

let type_of = function
  | Null -> Tnull
  | Int _ -> Tint
  | Float _ -> Tfloat
  | String _ -> Tstring
  | Bool _ -> Tbool

let ty_name = function
  | Tnull -> "null"
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tbool -> "bool"

let compatible a b =
  match a, b with
  | Tnull, _ | _, Tnull -> true
  | Tint, Tfloat | Tfloat, Tint -> true
  | _ -> a = b

(* Constructor rank used only to order values of unrelated types. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2
  | String _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | String x, String y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | a, b -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash (float_of_int x)
  | Float x -> Hashtbl.hash x
  | String s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b

let is_null = function Null -> true | _ -> false

let to_float = function
  | Int x -> Some (float_of_int x)
  | Float x -> Some x
  | Bool true -> Some 1.
  | Bool false -> Some 0.
  | Null | String _ -> None

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%g" x
  | String s -> s
  | Bool b -> string_of_bool b

let sql_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_sql = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%g" x
  | String s -> "'" ^ sql_escape s ^ "'"
  | Bool b -> string_of_bool b

let of_sql_literal s =
  let n = String.length s in
  if n = 0 then String ""
  else if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then begin
    let body = String.sub s 1 (n - 2) in
    (* Undo the '' escaping produced by to_sql. *)
    let buf = Buffer.create (String.length body) in
    let i = ref 0 in
    while !i < String.length body do
      Buffer.add_char buf body.[!i];
      if
        body.[!i] = '\''
        && !i + 1 < String.length body
        && body.[!i + 1] = '\''
      then i := !i + 2
      else incr i
    done;
    String (Buffer.contents buf)
  end
  else
    match String.lowercase_ascii s with
    | "null" -> Null
    | "true" -> Bool true
    | "false" -> Bool false
    | _ -> (
        match int_of_string_opt s with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt s with
            | Some f -> Float f
            | None -> String s))

let pp ppf v = Format.pp_print_string ppf (to_string v)
let pp_ty ppf t = Format.pp_print_string ppf (ty_name t)
