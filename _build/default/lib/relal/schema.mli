(** Relation schemas: ordered, named, typed attribute lists. *)

type attribute = {
  attr_name : string;  (** lowercase attribute name, e.g. ["title"] *)
  attr_ty : Value.ty;
  attr_width : int;  (** average stored width in bytes, for block math *)
}

type t = {
  rel_name : string;  (** lowercase relation name, e.g. ["movie"] *)
  attrs : attribute list;
}

val make : string -> (string * Value.ty * int) list -> t
(** [make name cols] builds a schema; names are lowercased.
    @raise Invalid_argument on duplicate attribute names or empty list. *)

val attribute : string -> Value.ty -> int -> attribute

val arity : t -> int
val attr_names : t -> string list

val index_of : t -> string -> int
(** Position of an attribute (case-insensitive).
    @raise Not_found if absent. *)

val find : t -> string -> attribute option
val mem : t -> string -> bool

val tuple_width : t -> int
(** Sum of attribute widths: the byte footprint of one stored tuple. *)

val default_width : Value.ty -> int
(** Conventional width used when a caller does not specify one:
    int/float 8, bool 1, string 24, null 1. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
