exception Manifest_error of string

let magic = "cqp-catalog 1"

let ty_to_string = function
  | Value.Tint -> "int"
  | Value.Tfloat -> "float"
  | Value.Tstring -> "string"
  | Value.Tbool -> "bool"
  | Value.Tnull -> "null"

let ty_of_string = function
  | "int" -> Value.Tint
  | "float" -> Value.Tfloat
  | "string" -> Value.Tstring
  | "bool" -> Value.Tbool
  | "null" -> Value.Tnull
  | s -> raise (Manifest_error ("unknown type " ^ s))

let manifest_line rel =
  let schema = Relation.schema rel in
  String.concat "|"
    (schema.Schema.rel_name
     :: string_of_int (Relation.block_size rel)
     :: List.map
          (fun a ->
            Printf.sprintf "%s:%s:%d" a.Schema.attr_name
              (ty_to_string a.Schema.attr_ty)
              a.Schema.attr_width)
          schema.Schema.attrs)

let parse_manifest_line line =
  match String.split_on_char '|' line with
  | name :: block_size :: attrs when attrs <> [] ->
      let block_size =
        match int_of_string_opt block_size with
        | Some b when b > 0 -> b
        | _ -> raise (Manifest_error ("bad block size in: " ^ line))
      in
      let cols =
        List.map
          (fun spec ->
            match String.split_on_char ':' spec with
            | [ attr; ty; width ] -> (
                match int_of_string_opt width with
                | Some w when w > 0 -> (attr, ty_of_string ty, w)
                | _ ->
                    raise (Manifest_error ("bad attribute width: " ^ spec)))
            | _ -> raise (Manifest_error ("bad attribute spec: " ^ spec)))
          attrs
      in
      (Schema.make name cols, block_size)
  | _ -> raise (Manifest_error ("bad manifest line: " ^ line))

let save catalog dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let names = Catalog.names catalog in
  let oc = open_out (Filename.concat dir "schema.manifest") in
  output_string oc (magic ^ "\n");
  List.iter
    (fun name ->
      let rel = Catalog.get catalog name in
      output_string oc (manifest_line rel ^ "\n");
      Csv.save_file rel (Filename.concat dir (name ^ ".csv")))
    names;
  close_out oc

let load dir =
  let path = Filename.concat dir "schema.manifest" in
  if not (Sys.file_exists path) then
    raise (Manifest_error ("no manifest at " ^ path));
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let catalog = Catalog.create () in
  (match List.rev !lines with
  | header :: rest when String.trim header = magic ->
      List.iter
        (fun line ->
          if String.trim line <> "" then begin
            let schema, block_size = parse_manifest_line line in
            let rel =
              Csv.load_file ~block_size schema
                (Filename.concat dir (schema.Schema.rel_name ^ ".csv"))
            in
            Catalog.add catalog rel
          end)
        rest
  | header :: _ ->
      raise (Manifest_error ("unexpected manifest header: " ^ header))
  | [] -> raise (Manifest_error "empty manifest"));
  catalog
