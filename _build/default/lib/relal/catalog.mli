(** The catalog: a named collection of relations plus their statistics.

    This is the "database" against which queries are analyzed, estimated
    and executed.  Statistics are computed lazily on first use and
    invalidated by {!refresh_stats}. *)

type t

val create : unit -> t

val add : t -> Relation.t -> unit
(** Register a relation under its schema name.
    @raise Invalid_argument if a relation of that name already exists. *)

val replace : t -> Relation.t -> unit
(** Register or overwrite; invalidates cached statistics for the name. *)

val find : t -> string -> Relation.t option
val get : t -> string -> Relation.t
(** @raise Not_found when absent. *)

val mem : t -> string -> bool
val names : t -> string list

val stats : t -> string -> Stats.t
(** Statistics for the named relation, computed on demand and cached.
    @raise Not_found when the relation is absent. *)

val refresh_stats : t -> unit
(** Drop all cached statistics (e.g. after bulk loads). *)

val blocks : t -> string -> int
(** Block count of the named relation (0 when absent): the [blocks(R)]
    input of the paper's cost formula. *)

val total_blocks : t -> int
val pp : Format.formatter -> t -> unit
