type column_stats = {
  n_values : int;
  n_distinct : int;
  min_v : Value.t option;
  max_v : Value.t option;
  mcv : (Value.t * int) list;
  histogram : Value.t array;
  rest_count : int;
  rest_distinct : int;
}

type t = {
  rel_card : int;
  rel_blocks : int;
  columns : (string * column_stats) list;
}

let mcv_limit = 16
let histogram_buckets = 32
let default_eq_selectivity = 0.1

let analyze_column values =
  let freq = Hashtbl.create 256 in
  let n_values = ref 0 in
  let min_v = ref None and max_v = ref None in
  List.iter
    (fun v ->
      if not (Value.is_null v) then begin
        incr n_values;
        (match Hashtbl.find_opt freq v with
        | Some c -> Hashtbl.replace freq v (c + 1)
        | None -> Hashtbl.add freq v 1);
        (match !min_v with
        | Some m when Value.compare v m >= 0 -> ()
        | _ -> min_v := Some v);
        match !max_v with
        | Some m when Value.compare v m <= 0 -> ()
        | _ -> max_v := Some v
      end)
    values;
  let by_freq =
    Hashtbl.fold (fun v c acc -> (v, c) :: acc) freq []
    |> List.sort (fun (v1, c1) (v2, c2) ->
           match Stdlib.compare c2 c1 with
           | 0 -> Value.compare v1 v2
           | c -> c)
  in
  let n_distinct = List.length by_freq in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  let mcv = take mcv_limit by_freq in
  let is_mcv v = List.exists (fun (m, _) -> Value.equal m v) mcv in
  let rest =
    List.filter (fun v -> (not (Value.is_null v)) && not (is_mcv v)) values
    |> List.sort Value.compare
  in
  let rest_count = List.length rest in
  let rest_distinct = max 0 (n_distinct - List.length mcv) in
  let histogram =
    if rest_count = 0 then [||]
    else begin
      let arr = Array.of_list rest in
      let buckets = min histogram_buckets rest_count in
      Array.init buckets (fun i ->
          arr.(min (rest_count - 1) (((i + 1) * rest_count / buckets) - 1)))
    end
  in
  {
    n_values = !n_values;
    n_distinct;
    min_v = !min_v;
    max_v = !max_v;
    mcv;
    histogram;
    rest_count;
    rest_distinct;
  }

let analyze rel =
  let schema = Relation.schema rel in
  let columns =
    List.mapi
      (fun i attr ->
        (attr.Schema.attr_name, analyze_column (Relation.column rel i)))
      schema.Schema.attrs
  in
  {
    rel_card = Relation.cardinality rel;
    rel_blocks = Relation.blocks rel;
    columns;
  }

let column t name = List.assoc_opt (String.lowercase_ascii name) t.columns

let eq_selectivity t name v =
  match column t name with
  | None -> default_eq_selectivity
  | Some cs ->
      if cs.n_values = 0 then 0.
      else begin
        let total = float_of_int t.rel_card in
        match List.find_opt (fun (m, _) -> Value.equal m v) cs.mcv with
        | Some (_, c) -> float_of_int c /. total
        | None ->
            if cs.rest_distinct > 0 then
              float_of_int cs.rest_count
              /. float_of_int cs.rest_distinct
              /. total
            else if cs.n_distinct > 0 then 1. /. float_of_int cs.n_distinct
            else default_eq_selectivity
      end

let fraction_below cs v =
  (* Fraction of non-null, non-MCV values <= v, via the histogram. *)
  let n = Array.length cs.histogram in
  if n = 0 then 0.
  else begin
    let below = ref 0 in
    Array.iter
      (fun bound -> if Value.compare bound v <= 0 then incr below)
      cs.histogram;
    float_of_int !below /. float_of_int n
  end

let range_selectivity t name ?lo ?hi () =
  match column t name with
  | None -> default_eq_selectivity
  | Some cs ->
      if cs.n_values = 0 then 0.
      else begin
        let total = float_of_int t.rel_card in
        let interp () =
          (* Try numeric interpolation on [min, max]. *)
          match cs.min_v, cs.max_v with
          | Some mn, Some mx -> (
              match Value.to_float mn, Value.to_float mx with
              | Some fmn, Some fmx when fmx > fmn ->
                  let flo =
                    match lo with
                    | None -> fmn
                    | Some v -> (
                        match Value.to_float v with
                        | Some f -> max fmn f
                        | None -> fmn)
                  in
                  let fhi =
                    match hi with
                    | None -> fmx
                    | Some v -> (
                        match Value.to_float v with
                        | Some f -> min fmx f
                        | None -> fmx)
                  in
                  if fhi < flo then Some 0.
                  else Some ((fhi -. flo) /. (fmx -. fmn))
              | _ -> None)
          | _ -> None
        in
        let hist () =
          let above_lo =
            match lo with None -> 1. | Some v -> 1. -. fraction_below cs v
          in
          let below_hi =
            match hi with None -> 1. | Some v -> fraction_below cs v
          in
          max 0. (above_lo +. below_hi -. 1.)
        in
        let frac = match interp () with Some f -> f | None -> hist () in
        let in_mcv =
          List.fold_left
            (fun acc (v, c) ->
              let ge_lo =
                match lo with None -> true | Some l -> Value.compare v l >= 0
              in
              let le_hi =
                match hi with None -> true | Some h -> Value.compare v h <= 0
              in
              if ge_lo && le_hi then acc + c else acc)
            0 cs.mcv
        in
        let est =
          ((frac *. float_of_int cs.rest_count) +. float_of_int in_mcv)
          /. total
        in
        min 1. (max 0. est)
      end

let distinct t name =
  match column t name with None -> 0 | Some cs -> cs.n_distinct

let pp ppf t =
  Format.fprintf ppf "card=%d blocks=%d" t.rel_card t.rel_blocks;
  List.iter
    (fun (name, cs) ->
      Format.fprintf ppf "@ %s: n=%d distinct=%d" name cs.n_values
        cs.n_distinct)
    t.columns
