type attribute = {
  attr_name : string;
  attr_ty : Value.ty;
  attr_width : int;
}

type t = { rel_name : string; attrs : attribute list }

let default_width = function
  | Value.Tint | Value.Tfloat -> 8
  | Value.Tbool -> 1
  | Value.Tstring -> 24
  | Value.Tnull -> 1

let attribute name ty width =
  { attr_name = String.lowercase_ascii name; attr_ty = ty; attr_width = width }

let make name cols =
  if cols = [] then invalid_arg "Schema.make: empty attribute list";
  let attrs = List.map (fun (n, ty, w) -> attribute n ty w) cols in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a.attr_name then
        invalid_arg ("Schema.make: duplicate attribute " ^ a.attr_name);
      Hashtbl.add seen a.attr_name ())
    attrs;
  { rel_name = String.lowercase_ascii name; attrs }

let arity s = List.length s.attrs
let attr_names s = List.map (fun a -> a.attr_name) s.attrs

let index_of s name =
  let name = String.lowercase_ascii name in
  let rec loop i = function
    | [] -> raise Not_found
    | a :: _ when a.attr_name = name -> i
    | _ :: rest -> loop (i + 1) rest
  in
  loop 0 s.attrs

let find s name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun a -> a.attr_name = name) s.attrs

let mem s name = find s name <> None
let tuple_width s = List.fold_left (fun acc a -> acc + a.attr_width) 0 s.attrs

let equal a b =
  a.rel_name = b.rel_name
  && List.length a.attrs = List.length b.attrs
  && List.for_all2
       (fun x y -> x.attr_name = y.attr_name && x.attr_ty = y.attr_ty)
       a.attrs b.attrs

let pp ppf s =
  Format.fprintf ppf "%s(%s)" s.rel_name
    (String.concat ", "
       (List.map
          (fun a -> a.attr_name ^ ":" ^ Value.ty_name a.attr_ty)
          s.attrs))
