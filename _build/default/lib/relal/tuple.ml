type t = Value.t array

let make vs = Array.of_list vs
let arity = Array.length
let get t i = t.(i)
let project t idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)
let concat = Array.append

let compare a b =
  let n = Array.length a and m = Array.length b in
  if n <> m then Stdlib.compare n m
  else
    let rec loop i =
      if i = n then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc v -> (acc * 1000003) lxor Value.hash v) 17 t

let to_list = Array.to_list

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", " (List.map Value.to_string (to_list t)))
