(** Typed values stored in relations.

    The CQP engine is dynamically typed at the storage level: every cell
    of every relation holds a [Value.t].  Schemas ({!Schema}) constrain
    which constructors may appear in a given column and the semantic
    analyzer enforces them at query-compile time. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type ty = Tnull | Tint | Tfloat | Tstring | Tbool

val type_of : t -> ty
(** Runtime type of a value; [Null] has type [Tnull]. *)

val ty_name : ty -> string
(** Human-readable type name, e.g. ["int"]. *)

val compatible : ty -> ty -> bool
(** [compatible a b] holds when values of the two types may be compared
    or assigned to the same column.  [Tnull] is compatible with
    everything; [Tint] and [Tfloat] are mutually compatible. *)

val compare : t -> t -> int
(** SQL-flavoured total order: [Null] sorts first, numeric values compare
    numerically across [Int]/[Float], and values of unrelated types fall
    back to an arbitrary but consistent constructor order. *)

val equal : t -> t -> bool
(** Structural equality under the same numeric coercion as {!compare}.
    Note: unlike three-valued SQL logic, [equal Null Null = true]; the
    executor handles SQL null semantics separately. *)

val hash : t -> int
(** Hash consistent with {!equal} (numeric coercion included). *)

val is_null : t -> bool

val to_float : t -> float option
(** Numeric view of a value, if it has one ([Int], [Float], [Bool]). *)

val to_string : t -> string
(** Display form (no quotes). *)

val to_sql : t -> string
(** SQL literal form (strings quoted and escaped). *)

val of_sql_literal : string -> t
(** Best-effort parse of an SQL literal: quoted string, integer, float,
    [true]/[false], [null]; anything else becomes a [String]. *)

val pp : Format.formatter -> t -> unit
val pp_ty : Format.formatter -> ty -> unit
