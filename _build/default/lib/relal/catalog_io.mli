(** Catalog persistence: save/load a whole catalog as a directory of
    CSV files plus a schema manifest.

    Layout:
    {v
    <dir>/schema.manifest     one line per relation:
                              name|block_size|attr:ty:width|attr:ty:width|...
    <dir>/<relation>.csv      the data, with a header row
    v}

    The manifest format is line-oriented and versioned by its first
    line ([cqp-catalog 1]). *)

exception Manifest_error of string

val save : Catalog.t -> string -> unit
(** Write every relation of the catalog under the directory (created if
    missing). *)

val load : string -> Catalog.t
(** Rebuild a catalog from a saved directory.
    @raise Manifest_error on a missing/ill-formed manifest.
    @raise Csv.Csv_error on bad data files. *)

val manifest_line : Relation.t -> string
val parse_manifest_line : string -> Schema.t * int
(** [schema, block_size]. @raise Manifest_error on bad syntax. *)
