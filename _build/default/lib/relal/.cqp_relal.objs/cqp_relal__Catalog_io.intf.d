lib/relal/catalog_io.mli: Catalog Relation Schema
