lib/relal/value.ml: Buffer Format Hashtbl Printf Stdlib String
