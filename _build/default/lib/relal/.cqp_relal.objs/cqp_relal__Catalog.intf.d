lib/relal/catalog.mli: Format Relation Stats
