lib/relal/stats.ml: Array Format Hashtbl List Relation Schema Stdlib String Value
