lib/relal/catalog.ml: Format Hashtbl List Relation Schema Stats String
