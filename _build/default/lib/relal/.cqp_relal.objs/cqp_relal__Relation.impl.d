lib/relal/relation.ml: Array Format List Printf Schema Tuple
