lib/relal/tuple.mli: Format Value
