lib/relal/csv.mli: Relation Schema
