lib/relal/stats.mli: Format Relation Value
