lib/relal/catalog_io.ml: Catalog Csv Filename List Printf Relation Schema String Sys Value
