lib/relal/relation.mli: Format Schema Tuple Value
