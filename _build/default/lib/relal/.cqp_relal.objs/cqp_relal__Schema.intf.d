lib/relal/schema.mli: Format Value
