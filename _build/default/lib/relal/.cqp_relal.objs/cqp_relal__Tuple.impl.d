lib/relal/tuple.ml: Array Format List Stdlib String Value
