lib/relal/schema.ml: Format Hashtbl List String Value
