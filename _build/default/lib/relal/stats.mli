(** Catalog statistics used for result-size estimation.

    The CQP parameter estimator needs selectivities for the selection
    conditions carried by preferences and join-size estimates for the
    join edges of preference paths.  We keep the classical
    System-R-style statistics: cardinality, distinct count, min/max,
    plus an equi-depth histogram and an exact most-common-values list
    for skewed columns. *)

type column_stats = {
  n_values : int;  (** non-null cell count *)
  n_distinct : int;
  min_v : Value.t option;
  max_v : Value.t option;
  mcv : (Value.t * int) list;
      (** most common values with exact frequencies, most frequent
          first; covers at most {!mcv_limit} values *)
  histogram : Value.t array;
      (** equi-depth bucket upper bounds over the non-MCV remainder *)
  rest_count : int;  (** cells not covered by [mcv] *)
  rest_distinct : int;  (** distinct values not covered by [mcv] *)
}

type t = {
  rel_card : int;
  rel_blocks : int;
  columns : (string * column_stats) list;  (** by attribute name *)
}

val mcv_limit : int
val histogram_buckets : int

val analyze : Relation.t -> t
(** Full scan computing statistics for every column. *)

val column : t -> string -> column_stats option

val eq_selectivity : t -> string -> Value.t -> float
(** Estimated fraction of tuples whose named column equals the value.
    Exact for MCV entries; uniform over the remainder otherwise; falls
    back to [1/n_distinct] and finally to a 0.1 default guess when
    statistics are missing.  Always within [0, 1]. *)

val range_selectivity :
  t -> string -> ?lo:Value.t -> ?hi:Value.t -> unit -> float
(** Estimated fraction of tuples within the (inclusive) bounds, by
    linear interpolation on min/max for numeric columns and histogram
    walking otherwise. *)

val distinct : t -> string -> int
(** Distinct count of the column, 0 when unknown. *)

val pp : Format.formatter -> t -> unit
