type t = {
  relations : (string, Relation.t) Hashtbl.t;
  stats_cache : (string, Stats.t) Hashtbl.t;
}

let create () =
  { relations = Hashtbl.create 16; stats_cache = Hashtbl.create 16 }

let key r = (Relation.schema r).Schema.rel_name

let add t r =
  let name = key r in
  if Hashtbl.mem t.relations name then
    invalid_arg ("Catalog.add: duplicate relation " ^ name);
  Hashtbl.add t.relations name r

let replace t r =
  let name = key r in
  Hashtbl.replace t.relations name r;
  Hashtbl.remove t.stats_cache name

let find t name = Hashtbl.find_opt t.relations (String.lowercase_ascii name)

let get t name =
  match find t name with Some r -> r | None -> raise Not_found

let mem t name = find t name <> None

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.relations []
  |> List.sort String.compare

let stats t name =
  let name = String.lowercase_ascii name in
  match Hashtbl.find_opt t.stats_cache name with
  | Some s -> s
  | None ->
      let s = Stats.analyze (get t name) in
      Hashtbl.add t.stats_cache name s;
      s

let refresh_stats t = Hashtbl.reset t.stats_cache

let blocks t name =
  match find t name with None -> 0 | Some r -> Relation.blocks r

let total_blocks t =
  Hashtbl.fold (fun _ r acc -> acc + Relation.blocks r) t.relations 0

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun name -> Format.fprintf ppf "%a@ " Relation.pp (get t name))
    (names t);
  Format.fprintf ppf "@]"
