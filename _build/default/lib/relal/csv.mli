(** CSV import/export for relations (RFC-4180-style quoting).

    Lets users load their own data instead of the synthetic generator:

    {[
      let movie = Schema.make "movie" [ ... ] in
      let rel = Csv.load_file movie "movies.csv" in
      Catalog.add catalog rel
    ]}

    Values are parsed against the schema's column types: [int]/[float]
    columns accept numeric literals (empty cells become NULL), [bool]
    columns accept [true]/[false]/[1]/[0], everything else loads as a
    string. *)

exception Csv_error of string * int  (** message, 1-based line *)

val parse_line : string -> string list
(** Split one CSV record: comma-separated, double-quote quoting,
    [""] as the embedded-quote escape.
    @raise Csv_error on unbalanced quotes. *)

val format_line : string list -> string
(** Render fields, quoting when a field contains a comma, quote or
    newline. *)

val load_string :
  ?block_size:int -> ?header:bool -> Schema.t -> string -> Relation.t
(** Parse a whole CSV document.  With [header:true] (default) the first
    line is validated against the schema's attribute names (order must
    match; case-insensitive).
    @raise Csv_error on arity mismatches, bad headers or unparsable
    typed cells. *)

val load_file :
  ?block_size:int -> ?header:bool -> Schema.t -> string -> Relation.t

val to_string : ?header:bool -> Relation.t -> string
val save_file : ?header:bool -> Relation.t -> string -> unit
