(** Physical-plan explanation.

    Describes, without executing, the pipeline the engine builds for a
    query: which base relations are scanned (cardinality and block
    cost), which WHERE conjuncts are pushed down to which source, which
    become hash-join keys at which join step, which remain as residual
    filters, and the post-join stages (aggregation, distinct, order,
    limit).  The classification mirrors {!Engine}'s planner rules, so
    the output is what actually runs. *)

type source_plan = {
  label : string;  (** alias (or relation name) *)
  relation : string option;  (** [None] for derived tables *)
  cardinality : int;
  blocks : int;
  pushed_down : string list;  (** conjuncts filtered at the scan *)
}

type join_step = {
  with_source : string;
  method_ : [ `Hash of string list | `Cartesian ];
  post_filters : string list;
}

type block_plan = {
  sources : source_plan list;
  joins : join_step list;
  residual : string list;
  aggregate : bool;
  distinct : bool;
  order_by : bool;
  limit : int option;
  estimated_blocks : int;  (** total scan cost in blocks *)
}

type t = Plan_select of block_plan | Plan_union of t list

val explain : Cqp_relal.Catalog.t -> Cqp_sql.Ast.query -> t
(** @raise Engine.Runtime_error on unknown relations. *)

val to_string : Cqp_relal.Catalog.t -> Cqp_sql.Ast.query -> string
(** Rendered plan, one stage per line. *)

val pp : Format.formatter -> t -> unit
