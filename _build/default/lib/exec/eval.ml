open Cqp_sql.Ast
module Value = Cqp_relal.Value

exception Eval_error of string

let scalar rs row e =
  let go = function
    | Col (q, name) -> (
        try row.(Rowset.find_col rs q name)
        with Rowset.Column_error msg -> raise (Eval_error msg))
    | Lit v -> v
    | Count_star | Count _ | Min _ | Max _ | Sum _ | Avg _ ->
        raise (Eval_error "aggregate in row context")
  in
  go e

let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* Classical two-pointer wildcard matcher ('%' = '*', '_' = '?'). *)
  let rec go pi si star_pi star_si =
    if si = ns then
      let rec only_pct pi =
        pi = np || (pattern.[pi] = '%' && only_pct (pi + 1))
      in
      only_pct pi
    else if pi < np && pattern.[pi] = '%' then go (pi + 1) si pi si
    else if pi < np && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_pi star_si
    else if star_pi >= 0 then go (star_pi + 1) (star_si + 1) star_pi (star_si + 1)
    else false
  in
  go 0 0 (-1) (-1)

let compare_values op a b =
  if Value.is_null a || Value.is_null b then None
  else
    let c = Value.compare a b in
    Some
      (match op with
      | Eq -> c = 0
      | Neq -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0)

(* Kleene connectives over [bool option]. *)
let kand a b =
  match a, b with
  | Some false, _ | _, Some false -> Some false
  | Some true, Some true -> Some true
  | _ -> None

let kor a b =
  match a, b with
  | Some true, _ | _, Some true -> Some true
  | Some false, Some false -> Some false
  | _ -> None

let knot = function
  | Some b -> Some (not b)
  | None -> None

let predicate rs row p =
  let rec go = function
    | True -> Some true
    | Cmp (op, l, r) -> compare_values op (scalar rs row l) (scalar rs row r)
    | And (a, b) -> kand (go a) (go b)
    | Or (a, b) -> kor (go a) (go b)
    | Not q -> knot (go q)
    | In_list (e, vs) ->
        let v = scalar rs row e in
        if Value.is_null v then None
        else if List.exists (fun x -> Value.equal v x) vs then Some true
        else if List.exists Value.is_null vs then None
        else Some false
    | Like (e, pat) -> (
        match scalar rs row e with
        | Value.Null -> None
        | v -> Some (like_match ~pattern:pat (Value.to_string v)))
    | Is_null e -> Some (Value.is_null (scalar rs row e))
    | Is_not_null e -> Some (not (Value.is_null (scalar rs row e)))
  in
  go p = Some true
