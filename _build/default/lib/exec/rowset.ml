type col = { qualifier : string option; name : string }
type t = { cols : col list; rows : Cqp_relal.Tuple.t list }

exception Column_error of string

let col ?qualifier name =
  {
    qualifier = Option.map String.lowercase_ascii qualifier;
    name = String.lowercase_ascii name;
  }

let make cols rows = { cols; rows }
let arity t = List.length t.cols
let cardinality t = List.length t.rows

let find_col t qualifier name =
  let name = String.lowercase_ascii name in
  let qualifier = Option.map String.lowercase_ascii qualifier in
  let matches c =
    c.name = name
    &&
    match qualifier with None -> true | Some q -> c.qualifier = Some q
  in
  let hits =
    List.concat (List.mapi (fun i c -> if matches c then [ i ] else []) t.cols)
  in
  match hits with
  | [ i ] -> i
  | [] ->
      raise
        (Column_error
           (Printf.sprintf "unknown column %s%s"
              (match qualifier with Some q -> q ^ "." | None -> "")
              name))
  | _ ->
      raise
        (Column_error (Printf.sprintf "ambiguous column reference %s" name))

let append a b =
  if arity a <> arity b then
    raise (Column_error "append: arity mismatch between union branches");
  { cols = a.cols; rows = a.rows @ b.rows }

let product_cols a b = a.cols @ b.cols

let pp ppf t =
  let header =
    List.map
      (fun c ->
        match c.qualifier with
        | Some q -> q ^ "." ^ c.name
        | None -> c.name)
      t.cols
  in
  let cells =
    List.map
      (fun row -> List.map Cqp_relal.Value.to_string (Array.to_list row))
      t.rows
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w r -> max w (String.length (List.nth r i)))
          (String.length h) cells)
      header
  in
  let line parts =
    Format.fprintf ppf "| %s |@ "
      (String.concat " | "
         (List.map2
            (fun s w -> s ^ String.make (w - String.length s) ' ')
            parts widths))
  in
  Format.pp_open_vbox ppf 0;
  line header;
  Format.fprintf ppf "|%s|@ "
    (String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter line cells;
  Format.fprintf ppf "(%d rows)" (List.length t.rows);
  Format.pp_close_box ppf ()
