type t = { mutable block_reads : int }

let default_block_ms = 1.0
let create () = { block_reads = 0 }
let reset t = t.block_reads <- 0
let charge_blocks t n = t.block_reads <- t.block_reads + n
let charge_scan t rel = charge_blocks t (Cqp_relal.Relation.blocks rel)
let block_reads t = t.block_reads

let cost_ms ?(block_ms = default_block_ms) t =
  float_of_int t.block_reads *. block_ms

let pp ppf t = Format.fprintf ppf "%d block reads" t.block_reads
