(** Block-I/O accounting.

    The engine charges one unit per block read from a base relation.
    This implements the paper's execution-cost regime (Section 7.1):
    cost is I/O only, every relation required by a (sub-)query is read
    from disk exactly once, and reading one block costs [b] milliseconds
    (default 1 ms). *)

type t

val default_block_ms : float
(** 1.0 — the paper's [b]. *)

val create : unit -> t
val reset : t -> unit

val charge_blocks : t -> int -> unit
(** Record that [n] blocks were read. *)

val charge_scan : t -> Cqp_relal.Relation.t -> unit
(** Charge a full scan of the relation. *)

val block_reads : t -> int

val cost_ms : ?block_ms:float -> t -> float
(** Total simulated I/O time: [block_reads * block_ms]. *)

val pp : Format.formatter -> t -> unit
