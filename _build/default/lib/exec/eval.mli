(** Row-level expression and predicate evaluation.

    Predicates follow SQL three-valued logic internally; the outcome is
    collapsed at the top (a WHERE/HAVING keeps a row only when the
    predicate is definitely true). *)

exception Eval_error of string

val scalar :
  Rowset.t -> Cqp_relal.Tuple.t -> Cqp_sql.Ast.expr -> Cqp_relal.Value.t
(** Evaluate an aggregate-free expression on one row.
    @raise Eval_error on aggregates or unresolvable columns. *)

val predicate : Rowset.t -> Cqp_relal.Tuple.t -> Cqp_sql.Ast.predicate -> bool
(** Three-valued evaluation collapsed to [true]/[not true]. *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE: [%] matches any sequence, [_] any single character. *)

val compare_values :
  Cqp_sql.Ast.binop ->
  Cqp_relal.Value.t ->
  Cqp_relal.Value.t ->
  bool option
(** [None] when either side is NULL (unknown). *)
