lib/exec/cursor.ml: Array Cqp_relal Cqp_sql Either Engine Eval Hashtbl Io List Option Rowset
