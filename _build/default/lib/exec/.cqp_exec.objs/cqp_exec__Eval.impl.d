lib/exec/eval.ml: Array Cqp_relal Cqp_sql List Rowset String
