lib/exec/eval.mli: Cqp_relal Cqp_sql Rowset
