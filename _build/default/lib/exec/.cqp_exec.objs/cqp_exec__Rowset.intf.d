lib/exec/rowset.mli: Cqp_relal Format
