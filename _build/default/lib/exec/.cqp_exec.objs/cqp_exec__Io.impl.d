lib/exec/io.ml: Cqp_relal Format
