lib/exec/explain.ml: Cqp_relal Cqp_sql Either Engine Format List Option Rowset String
