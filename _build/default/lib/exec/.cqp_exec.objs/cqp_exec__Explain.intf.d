lib/exec/explain.mli: Cqp_relal Cqp_sql Format
