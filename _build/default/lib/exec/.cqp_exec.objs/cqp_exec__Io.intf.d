lib/exec/io.mli: Cqp_relal Format
