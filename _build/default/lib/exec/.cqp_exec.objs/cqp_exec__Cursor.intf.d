lib/exec/cursor.mli: Cqp_relal Cqp_sql Io
