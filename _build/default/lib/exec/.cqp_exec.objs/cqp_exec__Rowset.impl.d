lib/exec/rowset.ml: Array Cqp_relal Format List Option Printf String
