lib/exec/engine.mli: Cqp_relal Cqp_sql Io Rowset
