lib/exec/engine.ml: Array Cqp_relal Cqp_sql Either Eval Format Hashtbl Io List Option Rowset
