(** Query execution.

    A rule-based planner turns the SQL AST into a left-deep pipeline of
    materialized physical operators: base-table scan (charging block
    I/O), selection pushdown, hash equi-join (cartesian product as a
    fallback), residual filters, hash aggregation with HAVING, DISTINCT,
    ORDER BY, LIMIT, and bag UNION ALL.

    Every base relation touched by a (sub-)query is scanned exactly
    once, matching the paper's cost assumptions, so
    [Io.block_reads] after execution is the "real" execution cost that
    Figure 15 compares against the estimator. *)

exception Runtime_error of string

type result = {
  schema : (string * Cqp_relal.Value.ty) list;
  rows : Cqp_relal.Tuple.t list;
  block_reads : int;  (** blocks charged while executing this query *)
}

val execute :
  ?io:Io.t -> Cqp_relal.Catalog.t -> Cqp_sql.Ast.query -> result
(** Run the query.  When [io] is given, block charges accumulate into it
    as well as into the result.
    @raise Runtime_error on unknown relations and other runtime faults
    (semantic errors surface as
    {!Cqp_sql.Analyzer.Semantic_error} if you {!Cqp_sql.Analyzer.check}
    first, which callers are expected to do). *)

val execute_rowset :
  ?io:Io.t -> Cqp_relal.Catalog.t -> Cqp_sql.Ast.query -> Rowset.t
(** Like {!execute} but returning the raw rowset with qualified column
    headers (used by tests and the CLI table printer). *)

val real_cost_ms :
  ?block_ms:float -> Cqp_relal.Catalog.t -> Cqp_sql.Ast.query -> float
(** Execute and report the simulated I/O time in milliseconds:
    [block_reads * block_ms] (default [block_ms] is
    {!Io.default_block_ms}). *)
