(** Streaming (volcano-style) execution.

    {!Engine} materializes every operator's output, which matches the
    paper's cost model (all relations of a sub-query are scanned in
    full).  This module provides the classical pull-based alternative:
    operators expose a [next] interface, blocks are charged {e as they
    are read}, and a LIMIT (or an abandoned cursor) stops upstream
    scans early — so [select ... limit k] can cost far fewer block
    reads than a full scan.

    The planner mirrors {!Engine}'s rules (pushdown, left-deep hash
    joins with the build side materialized, cartesian fallback) for the
    SPJ + UNION ALL fragment; queries needing aggregation, DISTINCT or
    ORDER BY are inherently blocking and are delegated to {!Engine}
    internally (their cost equals the materialized cost anyway). *)

type t

val open_query :
  ?io:Io.t -> Cqp_relal.Catalog.t -> Cqp_sql.Ast.query -> t
(** Build a cursor tree; no blocks are charged until rows are pulled
    (except for hash-join build sides and blocking sub-plans).
    @raise Engine.Runtime_error on unknown relations. *)

val next : t -> Cqp_relal.Tuple.t option
(** Pull the next output row; [None] at end of stream. *)

val to_list : t -> Cqp_relal.Tuple.t list
(** Drain the cursor. *)

val block_reads : t -> int
(** Blocks charged so far by this cursor tree. *)

val take : t -> int -> Cqp_relal.Tuple.t list
(** Pull at most [n] rows and stop — upstream scans beyond the needed
    blocks are never performed. *)
