(** Intermediate results flowing between physical operators.

    A rowset is a materialized bag of rows with a column header that
    records, for every column, the FROM-binding alias it came from (if
    any) and its name.  Column lookup mirrors SQL scoping: a qualified
    reference matches alias + name; an unqualified one must match a
    unique name. *)

type col = { qualifier : string option; name : string }
type t = { cols : col list; rows : Cqp_relal.Tuple.t list }

exception Column_error of string

val col : ?qualifier:string -> string -> col
val make : col list -> Cqp_relal.Tuple.t list -> t
val arity : t -> int
val cardinality : t -> int

val find_col : t -> string option -> string -> int
(** Index of the referenced column.
    @raise Column_error when missing or ambiguous. *)

val append : t -> t -> t
(** Bag union; headers must agree in arity (the first header wins). *)

val product_cols : t -> t -> col list
(** Header of a join/product of the two rowsets. *)

val pp : Format.formatter -> t -> unit
(** Tabular rendering of header and rows (for examples and the CLI). *)
