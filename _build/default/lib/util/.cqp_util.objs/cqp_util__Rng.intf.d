lib/util/rng.mli:
