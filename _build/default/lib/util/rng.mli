(** Deterministic pseudo-random numbers (splitmix64).

    Experiments must be reproducible run-to-run, so everything random in
    this repository — data generation, profile generation, metaheuristic
    baselines — draws from this explicitly-seeded generator rather than
    [Stdlib.Random]. *)

type t

val create : int -> t
(** Generator seeded with the given integer. *)

val split : t -> t
(** Derive an independent generator (advances the parent). *)

val int : t -> int -> int
(** [int t n] is uniform in [[0, n-1]]. @raise Invalid_argument if
    [n <= 0]. *)

val int_in : t -> int -> int -> int
(** Uniform in the inclusive range. *)

val float : t -> float -> float
(** Uniform in [[0, bound)]. *)

val bool : t -> bool

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [[1, n]] with exponent [s] (by inverse
    transform over the exact CDF; suitable for the catalog sizes used
    here). *)

val choice : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val sample_without_replacement : t -> int -> 'a array -> 'a list
(** [sample_without_replacement t k arr] draws [min k (length arr)]
    distinct elements. *)
