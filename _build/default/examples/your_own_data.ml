(* Bring your own data: load a database from CSV files, state a profile
   in plain text, personalize, and save the catalog for next time.

   Everything here goes through the public API a downstream user would
   touch: Csv.load_string / Catalog_io for data, Profile.of_strings for
   preferences, Personalizer.run for the pipeline, Ranker via
   Personalizer.ranked_results for scored answers.

   Run with: dune exec examples/your_own_data.exe *)

module V = Cqp_relal.Value
module C = Cqp_core

(* In a real application these would be files on disk; the example
   inlines them so it runs anywhere. *)
let books_csv =
  "bid,title,author,genre,year,pages\n\
   1,The Pale Sea,A. Murdoch,literary,1978,320\n\
   2,Night Trains,K. Ishiguro,literary,1995,280\n\
   3,Red Planet Dawn,C. Reyes,scifi,2015,410\n\
   4,The Last Cipher,C. Reyes,thriller,2018,350\n\
   5,Gardens of Stone,E. Brandt,literary,2003,290\n\
   6,Orbital Decay,M. Okafor,scifi,2021,380\n\
   7,The Quiet Ward,K. Ishiguro,literary,2005,260\n\
   8,Glass Mountains,E. Brandt,fantasy,2011,520\n\
   9,Deep Signal,M. Okafor,scifi,2019,340\n\
   10,A Winter Ledger,A. Murdoch,mystery,1985,300\n"

let ratings_csv =
  "bid,reader,stars\n\
   1,ana,5\n1,ben,4\n2,ana,5\n2,cem,5\n3,ben,4\n3,dia,5\n4,cem,3\n\
   5,ana,4\n6,dia,5\n6,ben,5\n7,cem,4\n8,dia,3\n9,ana,5\n9,ben,4\n10,cem,4\n"

let book_schema =
  Cqp_relal.Schema.make "book"
    [
      ("bid", V.Tint, 8);
      ("title", V.Tstring, 24);
      ("author", V.Tstring, 16);
      ("genre", V.Tstring, 12);
      ("year", V.Tint, 8);
      ("pages", V.Tint, 8);
    ]

let rating_schema =
  Cqp_relal.Schema.make "rating"
    [ ("bid", V.Tint, 8); ("reader", V.Tstring, 8); ("stars", V.Tint, 8) ]

let () =
  (* 1. Load CSV data into a catalog. *)
  let catalog = Cqp_relal.Catalog.create () in
  Cqp_relal.Catalog.add catalog (Cqp_relal.Csv.load_string book_schema books_csv);
  Cqp_relal.Catalog.add catalog
    (Cqp_relal.Csv.load_string rating_schema ratings_csv);
  Format.printf "loaded:@.%a@." Cqp_relal.Catalog.pp catalog;

  (* 2. A reader profile in the Figure-1 text format. *)
  let profile =
    Cqp_prefs.Profile.of_strings
      [
        ("book.genre = 'scifi'", 0.8);
        ("book.genre = 'literary'", 0.6);
        ("book.author = 'K. Ishiguro'", 0.7);
        ("book.year >= 2010", 0.5);
        ("book.bid = rating.bid", 0.9);
        ("rating.stars = 5", 0.7);
      ]
  in
  (match Cqp_prefs.Profile.validate catalog profile with
  | Ok () -> ()
  | Error problems ->
      List.iter prerr_endline problems;
      exit 1);

  (* 3. Personalize a query under a handful-of-answers context. *)
  let outcome =
    C.Personalizer.run catalog profile ~sql:"select title from book"
      ~problem:(C.Problem.problem3 ~cmax:15. ~smin:1. ~smax:4.) ()
  in
  Format.printf "@.%s@."
    (C.Problem.describe (C.Problem.problem3 ~cmax:15. ~smin:1. ~smax:4.));
  Format.printf "chosen: %a@." C.Solution.pp outcome.C.Personalizer.solution;
  Format.printf "sql: %s@."
    (Cqp_sql.Printer.to_string outcome.C.Personalizer.personalized);
  List.iter
    (fun row ->
      Format.printf "  -> %s@." (V.to_string (Cqp_relal.Tuple.get row 0)))
    outcome.C.Personalizer.rows;

  (* 4. Scored answers across all preferences (relaxed ranking). *)
  Format.printf "@.all books, ranked by satisfied preferences:@.";
  let ranked = C.Personalizer.ranked_results catalog outcome in
  List.iter
    (fun rr ->
      Format.printf "  %.4f  %s@." rr.C.Ranker.score
        (V.to_string (Cqp_relal.Tuple.get rr.C.Ranker.row 0)))
    ranked.C.Ranker.ranked;

  (* 5. Persist the catalog and prove it reloads identically. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "cqp_books" in
  Cqp_relal.Catalog_io.save catalog dir;
  let reloaded = Cqp_relal.Catalog_io.load dir in
  let count cat =
    Cqp_relal.Relation.cardinality (Cqp_relal.Catalog.get cat "book")
  in
  Format.printf "@.saved to %s and reloaded: %d books (was %d)@." dir
    (count reloaded) (count catalog)
