(* Context-to-problem policies.

   The paper leaves "mapping the search context onto the appropriate
   CQP problem" as a policy issue (Sections 1 and 8).  The library
   supplies that layer as Cqp_core.Policy: a device/network/intent
   context record mapped onto a Table-1 problem whose bounds scale with
   the query's Supreme Cost.  This example drives it across the
   scenarios of the paper's introduction.

   Run with: dune exec examples/context_policies.exe *)

module C = Cqp_core
module W = Cqp_workload
module Policy = Cqp_core.Policy

let contexts =
  [
    ( "Al at the office",
      {
        Policy.device = Policy.Laptop;
        network = Policy.Broadband;
        intent = Policy.Exhaustive_research;
        requested_answers = None;
        location = None;
      } );
    ( "Al browsing on hotel wifi",
      {
        Policy.device = Policy.Laptop;
        network = Policy.Wifi;
        intent = Policy.Browse;
        requested_answers = None;
        location = None;
      } );
    ( "Al walking in Pisa",
      {
        Policy.device = Policy.Palmtop;
        network = Policy.Cellular;
        intent = Policy.Browse;
        requested_answers = Some 3;
        location = None;
      } );
    ( "Al needs one quick answer",
      {
        Policy.device = Policy.Phone;
        network = Policy.Cellular;
        intent = Policy.Quick_answer;
        requested_answers = Some 5;
        location = None;
      } );
    ( "back home, desktop, no request cap",
      {
        Policy.device = Policy.Desktop;
        network = Policy.Broadband;
        intent = Policy.Quick_answer;
        requested_answers = None;
        location = None;
      } );
  ]

let () =
  let catalog = W.Imdb.build ~config:W.Imdb.small_config ~seed:8 () in
  let rng = Cqp_util.Rng.create 15 in
  let profile = W.Profile_gen.generate ~rng catalog in
  let sql = "select title from movie" in
  Format.printf "query: %s@.@." sql;
  List.iter
    (fun (label, context) ->
      Format.printf "--- %s (%s) ---@." label (Policy.describe context);
      let outcome =
        Policy.run catalog profile ~sql ~context ~max_k:12 ()
      in
      let sol = outcome.C.Personalizer.solution in
      Format.printf
        "-> %d preferences, doi %.4f, est. cost %.1f ms, est. size %.1f, %d actual rows@.@."
        (List.length sol.C.Solution.pref_ids)
        sol.C.Solution.params.C.Params.doi
        sol.C.Solution.params.C.Params.cost
        sol.C.Solution.params.C.Params.size
        (List.length outcome.C.Personalizer.rows))
    contexts;

  (* Section 8's location-based integration: the same tourist profile,
     but the context carries where Al currently is — the policy injects
     a must-have locality preference before personalizing. *)
  Format.printf "--- location-based (Section 8): Al lands in Florence ---@.";
  let tourist = W.Tourist.build ~seed:2025 () in
  let here =
    {
      Policy.device = Policy.Phone;
      network = Policy.Wifi;
      intent = Policy.Browse;
      requested_answers = Some 8;
      location =
        Some (Policy.at "restaurant" "city" (Cqp_relal.Value.String "florence"));
    }
  in
  let outcome =
    Policy.run tourist W.Tourist.al_profile
      ~sql:"select name, city from restaurant" ~context:here ()
  in
  Format.printf "policy context: %s@." (Policy.describe here);
  List.iteri
    (fun i row ->
      if i < 5 then
        Format.printf "  %s (%s)@."
          (Cqp_relal.Value.to_string (Cqp_relal.Tuple.get row 0))
          (Cqp_relal.Value.to_string (Cqp_relal.Tuple.get row 1)))
    outcome.C.Personalizer.rows
