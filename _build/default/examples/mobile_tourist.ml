(* The paper's introduction scenario: Al and the tourist-information
   service.

   The same user asks the same question in two search contexts:

   - at the office, on a fast connection: optimize interest under a
     loose cost budget (Problem 2 with large cmax);
   - walking in Pisa with a palmtop: tight response-time budget and at
     most three answers (Problem 3 with small cmax and smax = 3).

   Run with: dune exec examples/mobile_tourist.exe *)

module V = Cqp_relal.Value
module C = Cqp_core
module W = Cqp_workload

let catalog = W.Tourist.build ~seed:2025 ()
let profile = W.Tourist.al_profile

let show title (outcome : C.Personalizer.outcome) =
  let sol = outcome.C.Personalizer.solution in
  Format.printf "=== %s ===@." title;
  Format.printf "personalization: %a@." C.Solution.pp sol;
  Format.printf "sql: %s@."
    (Cqp_sql.Printer.to_string outcome.C.Personalizer.personalized);
  Format.printf "answers: %d rows in %.1f ms of simulated I/O@."
    (List.length outcome.C.Personalizer.rows)
    outcome.C.Personalizer.real_cost_ms;
  List.iteri
    (fun i row ->
      if i < 5 then
        Format.printf "  %s@." (V.to_string (Cqp_relal.Tuple.get row 0)))
    outcome.C.Personalizer.rows;
  Format.printf "@."

let () =
  let sql = "select name from restaurant where city = 'pisa'" in
  Format.printf "Al asks: %s@.@." sql;

  (* Office context: plenty of bandwidth and patience. *)
  let office =
    C.Personalizer.run catalog profile ~sql
      ~problem:(C.Problem.problem2 ~cmax:500.) ()
  in
  show "office (fast connection: maximize interest, cost <= 500ms)" office;

  (* Palmtop context: quick answer, at most three restaurants.  The
     problem-3 bounds follow the paper: smax comes from the user's
     request ("up to three restaurants"). *)
  let palmtop =
    C.Personalizer.run catalog profile ~sql
      ~problem:(C.Problem.problem3 ~cmax:160. ~smin:1. ~smax:3.) ()
  in
  show "palmtop in Pisa (cost <= 160ms, 1 <= answers <= 3)" palmtop;

  (* Same context but the system must answer as fast as possible while
     still being personal enough: Problem 5. *)
  let hurry =
    C.Personalizer.run catalog profile ~sql
      ~problem:(C.Problem.problem5 ~dmin:0.8 ~smin:1. ~smax:10.) ()
  in
  show "in a hurry (minimize cost, doi >= 0.8, <= 10 answers)" hurry;

  (* The ranked view of the office answer: every restaurant scored by
     the preferences it satisfies (Section 3's ranking by r). *)
  Format.printf "=== office answers, ranked by satisfied preferences ===@.";
  let ranked = C.Personalizer.ranked_results catalog office in
  List.iteri
    (fun i rr ->
      if i < 8 then
        Format.printf "  %.4f  %s@." rr.C.Ranker.score
          (V.to_string (Cqp_relal.Tuple.get rr.C.Ranker.row 0)))
    ranked.C.Ranker.ranked
