examples/mobile_tourist.mli:
