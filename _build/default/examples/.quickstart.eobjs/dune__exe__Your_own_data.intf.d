examples/your_own_data.mli:
