examples/mobile_tourist.ml: Cqp_core Cqp_relal Cqp_sql Cqp_workload Format List
