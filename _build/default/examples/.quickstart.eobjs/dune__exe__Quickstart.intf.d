examples/quickstart.mli:
