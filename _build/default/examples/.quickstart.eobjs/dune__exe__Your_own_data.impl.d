examples/your_own_data.ml: Cqp_core Cqp_prefs Cqp_relal Cqp_sql Filename Format List
