examples/context_policies.mli:
