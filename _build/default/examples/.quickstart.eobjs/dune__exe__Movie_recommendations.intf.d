examples/movie_recommendations.mli:
