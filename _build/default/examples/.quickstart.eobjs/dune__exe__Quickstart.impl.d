examples/quickstart.ml: Cqp_core Cqp_prefs Cqp_relal Cqp_sql Format List
