examples/context_policies.ml: Cqp_core Cqp_relal Cqp_util Cqp_workload Format List
