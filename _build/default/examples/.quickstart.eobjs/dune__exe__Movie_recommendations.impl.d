examples/movie_recommendations.ml: Cqp_core Cqp_exec Cqp_relal Cqp_sql Cqp_util Cqp_workload Format List
