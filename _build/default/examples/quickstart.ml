(* Quickstart: the paper's running example, end to end.

   Build the Section-3 movie schema, load a few movies, state the
   Figure-1 profile, and personalize "select title from movie" under a
   cost budget (Problem 2).  Run with:

     dune exec examples/quickstart.exe *)

module V = Cqp_relal.Value
module C = Cqp_core

let catalog =
  let cat = Cqp_relal.Catalog.create () in
  let add name cols rows =
    Cqp_relal.Catalog.add cat
      (Cqp_relal.Relation.of_tuples (Cqp_relal.Schema.make name cols)
         (List.map Cqp_relal.Tuple.make rows))
  in
  add "movie"
    [ ("mid", V.Tint, 8); ("title", V.Tstring, 24); ("year", V.Tint, 8); ("did", V.Tint, 8) ]
    [
      [ V.Int 1; V.String "Everyone Says I Love You"; V.Int 1996; V.Int 1 ];
      [ V.Int 2; V.String "Chicago"; V.Int 2002; V.Int 2 ];
      [ V.Int 3; V.String "Match Point"; V.Int 2005; V.Int 1 ];
      [ V.Int 4; V.String "Cabaret"; V.Int 1972; V.Int 3 ];
      [ V.Int 5; V.String "Annie Hall"; V.Int 1977; V.Int 1 ];
    ];
  add "director"
    [ ("did", V.Tint, 8); ("name", V.Tstring, 24) ]
    [
      [ V.Int 1; V.String "W. Allen" ];
      [ V.Int 2; V.String "R. Marshall" ];
      [ V.Int 3; V.String "B. Fosse" ];
    ];
  add "genre"
    [ ("mid", V.Tint, 8); ("genre", V.Tstring, 16) ]
    [
      [ V.Int 1; V.String "musical" ];
      [ V.Int 2; V.String "musical" ];
      [ V.Int 3; V.String "drama" ];
      [ V.Int 4; V.String "musical" ];
      [ V.Int 5; V.String "comedy" ];
    ];
  cat

(* The profile of Figure 1: a taste for musicals (0.5), a strong taste
   for W. Allen (0.8), and join preferences saying how much genre and
   director information matters for movies. *)
let profile =
  Cqp_prefs.Profile.of_strings
    [
      ("genre.genre = 'musical'", 0.5);
      ("movie.mid = genre.mid", 0.9);
      ("movie.did = director.did", 1.0);
      ("director.name = 'W. Allen'", 0.8);
    ]

let () =
  Format.printf "Profile:@.%a@." Cqp_prefs.Profile.pp profile;
  let sql = "select title from movie" in
  let problem = C.Problem.problem2 ~cmax:100. in
  Format.printf "Query: %s@.%s@.@." sql (C.Problem.describe problem);
  let outcome = C.Personalizer.run catalog profile ~sql ~problem () in
  let sol = outcome.C.Personalizer.solution in
  Format.printf "Preference space:@.%a@." C.Pref_space.pp
    outcome.C.Personalizer.pref_space;
  Format.printf "Chosen personalization: %a@.@." C.Solution.pp sol;
  Format.printf "Personalized SQL:@.  %s@.@."
    (Cqp_sql.Printer.to_string outcome.C.Personalizer.personalized);
  Format.printf "Results (%d rows, %.1f ms of I/O):@."
    (List.length outcome.C.Personalizer.rows)
    outcome.C.Personalizer.real_cost_ms;
  List.iter
    (fun row ->
      Format.printf "  %s@." (V.to_string (Cqp_relal.Tuple.get row 0)))
    outcome.C.Personalizer.rows
