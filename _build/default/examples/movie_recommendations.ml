(* Movie recommendations over the synthetic IMDB database: compare all
   five CQP search algorithms on the same personalization task and show
   the trade-off the paper's evaluation measures — identical (or nearly
   identical) answer quality at very different search costs.

   Run with: dune exec examples/movie_recommendations.exe *)

module C = Cqp_core
module W = Cqp_workload
module V = Cqp_relal.Value

let () =
  let catalog = W.Imdb.build ~seed:2024 () in
  let rng = Cqp_util.Rng.create 4242 in
  let profile = W.Profile_gen.generate ~rng catalog in
  let sql = "select title from movie" in
  let query = Cqp_sql.Parser.parse sql in
  let est = C.Estimate.create catalog query in
  let ps = C.Pref_space.build ~max_k:20 est profile in
  let supreme = C.Pref_space.supreme_cost ps in
  let cmax = 0.3 *. supreme in
  Format.printf
    "K = %d preferences extracted; Supreme Cost = %.0f ms; cmax = %.0f ms@.@."
    (C.Pref_space.k ps) supreme cmax;
  Format.printf "%-16s %10s %10s %8s %10s %10s %10s@." "algorithm" "doi"
    "cost(ms)" "|PU|" "visited" "peak KB" "time(ms)";
  List.iter
    (fun algo ->
      let sol = C.Algorithm.run algo ps ~cmax in
      let stats = sol.C.Solution.stats in
      Format.printf "%-16s %10.6f %10.1f %8d %10d %10.1f %10.2f@."
        (C.Algorithm.name algo)
        sol.C.Solution.params.C.Params.doi
        sol.C.Solution.params.C.Params.cost
        (List.length sol.C.Solution.pref_ids)
        stats.C.Instrument.states_visited
        (C.Instrument.peak_kbytes stats)
        (1000. *. stats.C.Instrument.wall_seconds))
    (C.Algorithm.all @ [ C.Algorithm.Exhaustive ]);
  (* Execute the winner's personalization and show the top answers,
     ranked by how many preferences each satisfies (the engine's
     having-count construction already intersects; for display we rank
     by title). *)
  Format.printf "@.Personalized answers (C_MaxBounds):@.";
  let sol = C.Algorithm.run C.Algorithm.C_maxbounds ps ~cmax in
  let space = C.Space.create ~order:C.Space.By_doi ps in
  let paths = C.Solution.paths space sol in
  let personalized = C.Rewrite.personalize catalog query paths in
  let result = Cqp_exec.Engine.execute catalog personalized in
  Format.printf "  %d movies satisfy all %d chosen preferences@."
    (List.length result.Cqp_exec.Engine.rows)
    (List.length paths);
  List.iteri
    (fun i row ->
      if i < 10 then
        Format.printf "  %s@." (V.to_string (Cqp_relal.Tuple.get row 0)))
    result.Cqp_exec.Engine.rows;
  (* If the full conjunction is empty, relax to the best single
     preference so the example always shows answers. *)
  if result.Cqp_exec.Engine.rows = [] then begin
    match paths with
    | best :: _ ->
        let q1 = C.Rewrite.personalize catalog query [ best ] in
        let r1 = Cqp_exec.Engine.execute catalog q1 in
        Format.printf
          "  (conjunction empty; the top preference alone matches %d movies)@."
          (List.length r1.Cqp_exec.Engine.rows)
    | [] -> ()
  end
